#include "src/bespoke/flow.hh"

#include <chrono>

#include "src/cpu/bsp430.hh"
#include "src/util/table.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

/** Key material for a workload set, order-sensitive. */
uint64_t
hashApps(const std::vector<const Workload *> &apps)
{
    uint64_t h = kHashBasis;
    for (const Workload *w : apps)
        h = hashCombine(h, hashProgram(w->assembleProgram()));
    return h;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

BespokeFlow::BespokeFlow(FlowOptions opts)
    : BespokeFlow(std::move(opts), buildBsp430())
{
}

BespokeFlow::BespokeFlow(FlowOptions opts, Netlist baseline)
    : opts_(std::move(opts)), baseline_(std::move(baseline)),
      store_(opts_.checkpointDir, opts_.checkpointMaxBytes,
             opts_.checkpointCoordinator)
{
    sizeForLoads(baseline_, opts_.timing);
    TimingReport rep = analyzeTiming(baseline_, opts_.timing);
    // The baseline is "optimized to minimize area and power for
    // operation at" its achievable frequency (paper Sec. 4.2): hold
    // every design to the baseline's critical path plus a small margin.
    clockPeriodPs_ = rep.criticalPathPs * 1.02;
    // Checkpoint keys hash the *sized* baseline: every stage artifact
    // is derived from the netlist as the flow actually analyzes it.
    baselineHash_ = baseline_.contentHash();
    analysisOptsHash_ = hashAnalysisOptions(opts_.analysis);
    flowOptsHash_ = hashFlowOptions(opts_);
    bespoke_inform("baseline: ", baseline_.numCells(), " cells, ",
                   formatFixed(rep.criticalPathPs, 0), " ps critical (",
                   formatFixed(1e6 / clockPeriodPs_, 1), " MHz)");
}

DesignMetrics
BespokeFlow::measure(const Netlist &netlist,
                     const std::vector<const Workload *> &apps)
{
    CheckpointKey key;
    StageLock in_flight;
    if (store_.enabled()) {
        key = {netlist.contentHash(), hashApps(apps), flowOptsHash_};
        auto load = [&](DesignMetrics *out) {
            JsonValue doc;
            if (!store_.load(key, "metrics", &doc))
                return false;
            std::string err;
            if (metricsFromJson(doc, out, &err))
                return true;
            bespoke_warn("checkpoint metrics: ", err, "; re-measuring");
            return false;
        };
        DesignMetrics cached;
        if (load(&cached))
            return cached;
        // First runner computes; anyone else waits here, then finds
        // the saved artifact on the re-try load.
        in_flight = store_.lockStage(key, "metrics");
        if (in_flight.waited() && load(&cached))
            return cached;
    }

    auto t0 = std::chrono::steady_clock::now();
    DesignMetrics m;
    NetlistStats stats = netlist.stats();
    m.gates = stats.numCells;
    m.flops = stats.numSequential;
    m.areaUm2 = stats.area;

    TimingReport rep = analyzeTiming(netlist, opts_.timing);
    m.criticalPathPs = rep.criticalPathPs;
    m.slackFraction =
        (clockPeriodPs_ - rep.criticalPathPs) / clockPeriodPs_;

    // Switching activity from concrete representative runs, replayed
    // lane-parallel per app (bit-identical to the sequential loop: the
    // batch runner replays cross-run counter boundaries in run order).
    // One simulation context serves every run on this netlist.
    std::shared_ptr<const SocContext> ctx = SocContext::make(netlist);
    ToggleCounter toggles(netlist);
    GateBatchObservers obs;
    obs.toggles = &toggles;
    Rng rng(opts_.powerSeed);
    for (const Workload *w : apps) {
        AsmProgram prog = w->assembleProgram();
        std::vector<WorkloadInput> inputs;
        for (int i = 0; i < opts_.powerInputsPerWorkload; i++)
            inputs.push_back(w->genInput(rng));
        std::vector<GateRun> runs = runWorkloadGateBatch(
            netlist, *w, prog, inputs, opts_.planeBits, obs, ctx);
        for (const GateRun &run : runs) {
            if (!run.halted) {
                bespoke_warn("power run of ", w->name,
                             " did not halt within its cycle budget");
            }
        }
    }
    m.powerNominal =
        computePower(netlist, toggles, opts_.power, opts_.timing);
    m.vmin = vminForPeriod(rep.criticalPathPs, clockPeriodPs_,
                           opts_.timing);
    m.powerAtVmin =
        scaleToVoltage(m.powerNominal, m.vmin, opts_.power);

    if (opts_.stageCallback)
        opts_.stageCallback("metrics", secondsSince(t0));
    if (store_.enabled())
        store_.save(key, "metrics", metricsToJson(m));
    return m;
}

DesignMetrics
BespokeFlow::measureBaseline(const std::vector<const Workload *> &apps)
{
    return measure(baseline_, apps);
}

AnalysisResult
BespokeFlow::analyze(const Workload &app)
{
    return analyzeProgram(app.assembleProgram(), app.name);
}

AnalysisResult
BespokeFlow::analyzeProgram(const AsmProgram &prog,
                            const std::string &name)
{
    CheckpointKey key{baselineHash_, hashProgram(prog),
                      analysisOptsHash_};
    StageLock in_flight;
    if (store_.enabled()) {
        auto load = [&](AnalysisResult *out) {
            JsonValue doc;
            if (!store_.load(key, "analysis", &doc))
                return false;
            std::string err;
            if (analysisFromJson(doc, baseline_, out, &err))
                return true;
            bespoke_warn("checkpoint analysis for ", name, ": ", err,
                         "; re-analyzing");
            return false;
        };
        AnalysisResult cached;
        if (load(&cached))
            return cached;
        in_flight = store_.lockStage(key, "analysis");
        if (in_flight.waited() && load(&cached))
            return cached;
    }
    AnalysisResult r = analyzeActivity(baseline_, prog, opts_.analysis);
    if (opts_.stageCallback)
        opts_.stageCallback("analysis", r.seconds);
    // Capped (incomplete) runs are never checkpointed: a rerun with
    // higher caps must not resume from a partial toggle set.
    if (store_.enabled() && r.completed)
        store_.save(key, "analysis", analysisToJson(r));
    return r;
}

Netlist
BespokeFlow::obtainDesign(
    uint64_t program_hash, const char *stage, CutStats *cut,
    PipelineReport *report,
    const std::function<Netlist(CutStats *, PipelineReport *)> &build)
{
    CheckpointKey key{baselineHash_, program_hash, flowOptsHash_};
    StageLock in_flight;
    if (store_.enabled()) {
        auto load = [&](Netlist *out) {
            JsonValue doc;
            if (!store_.load(key, stage, &doc))
                return false;
            std::string err;
            if (designFromJson(doc, out, cut, &err, report))
                return true;
            bespoke_warn("checkpoint ", stage, ": ", err,
                         "; re-cutting");
            return false;
        };
        Netlist cached;
        if (load(&cached))
            return cached;
        in_flight = store_.lockStage(key, stage);
        if (in_flight.waited() && load(&cached))
            return cached;
    }
    auto t0 = std::chrono::steady_clock::now();
    Netlist netlist = build(cut, report);
    // Re-size for the (smaller) loads: the paper's slack-driven
    // replacement with smaller cells falls out of re-running sizing.
    sizeForLoads(netlist, opts_.timing);
    if (opts_.stageCallback)
        opts_.stageCallback(stage, secondsSince(t0));
    if (store_.enabled())
        store_.save(key, stage, designToJson(netlist, *cut, report));
    return netlist;
}

PassEnv
BespokeFlow::makePassEnv(std::vector<const Workload *> apps) const
{
    PassEnv env;
    env.timing = &opts_.timing;
    env.power = &opts_.power;
    env.clockPeriodPs = clockPeriodPs_;
    int inputs = opts_.powerInputsPerWorkload;
    uint64_t seed = opts_.powerSeed;
    int plane_bits = opts_.planeBits;
    // Activity provider: the same lane-batched replay measure() uses
    // for the final power numbers, so the rewrite search optimizes the
    // metric the flow actually reports.
    env.measureActivity = [apps, inputs, seed, plane_bits](
                              const Netlist &nl, ToggleCounter *tc) {
        std::shared_ptr<const SocContext> ctx = SocContext::make(nl);
        GateBatchObservers obs;
        obs.toggles = tc;
        Rng rng(seed);
        for (const Workload *w : apps) {
            AsmProgram prog = w->assembleProgram();
            std::vector<WorkloadInput> in;
            for (int i = 0; i < inputs; i++)
                in.push_back(w->genInput(rng));
            runWorkloadGateBatch(nl, *w, prog, in, plane_bits, obs, ctx);
        }
    };
    // Duty provider: scalar replay sampling the requested enable nets
    // every cycle (X counts as high — a maybe-writing bank cannot be
    // gated).
    env.measureDuty = [apps, inputs, seed](
                          const Netlist &nl,
                          const std::vector<GateId> &ids,
                          std::vector<uint64_t> *high,
                          uint64_t *cycles) {
        high->assign(ids.size(), 0);
        *cycles = 0;
        Rng rng(seed);
        auto per_cycle = [&](const GateSim &sim) {
            (*cycles)++;
            for (size_t k = 0; k < ids.size(); k++) {
                if (sim.value(ids[k]) != Logic::Zero)
                    (*high)[k]++;
            }
        };
        for (const Workload *w : apps) {
            AsmProgram prog = w->assembleProgram();
            for (int i = 0; i < inputs; i++) {
                WorkloadInput in = w->genInput(rng);
                runWorkloadGate(nl, *w, prog, in, nullptr, nullptr,
                                per_cycle);
            }
        }
    };
    return env;
}

BespokeDesign
BespokeFlow::tailor(const Workload &app)
{
    BespokeDesign d;
    std::string err;
    bespoke_assert(tryTailor(app, &d, &err), err);
    return d;
}

bool
BespokeFlow::tryTailor(const Workload &app, BespokeDesign *out,
                       std::string *err)
{
    AsmProgram prog = app.assembleProgram();
    AnalysisResult analysis = analyzeProgram(prog, app.name);
    if (!analysis.completed) {
        *err = "analysis hit caps for " + app.name;
        return false;
    }
    CutStats cut;
    PipelineReport report;
    Netlist bespoke_nl = obtainDesign(
        hashProgram(prog), "design", &cut, &report,
        [&](CutStats *c, PipelineReport *r) {
            PassEnv env = makePassEnv({&app});
            // Single-program tailoring: the SAT never-toggle pass can
            // reason about the full SoC. (Multi-program tailoring
            // leaves env.program null — a proof would have to hold
            // for every program, which the pass does not yet do.)
            env.program = &prog;
            PassPipelineOptions popts = opts_.passes;
            // Auto depth: cover exactly the analysis's bounded
            // envelope. Derived from inputs already in the checkpoint
            // key, so resolving it here keeps keys stable.
            if (popts.satNeverToggle && popts.sat.depth == 0) {
                popts.sat.depth =
                    static_cast<int>(analysis.cyclesSimulated);
            }
            return runTailorPipeline(baseline_, analysis.activity.get(),
                                     popts, env, c, r);
        });
    *out = BespokeDesign{std::move(bespoke_nl), cut, {},
                         std::move(analysis), std::move(report)};
    out->metrics = measure(out->netlist, {&app});
    return true;
}

BespokeDesign
BespokeFlow::tailorMulti(const std::vector<const Workload *> &apps)
{
    BespokeDesign d;
    std::string err;
    bespoke_assert(tryTailorMulti(apps, &d, &err), err);
    return d;
}

bool
BespokeFlow::tryTailorMulti(const std::vector<const Workload *> &apps,
                            BespokeDesign *out, std::string *err)
{
    bespoke_assert(!apps.empty());
    ActivityTracker merged(baseline_);
    AnalysisResult last;
    uint64_t progs = kHashBasis;
    for (const Workload *w : apps) {
        AsmProgram prog = w->assembleProgram();
        progs = hashCombine(progs, hashProgram(prog));
        AnalysisResult r = analyzeProgram(prog, w->name);
        if (!r.completed) {
            *err = "analysis hit caps for " + w->name;
            return false;
        }
        if (!merged.initialCaptured()) {
            merged = std::move(*r.activity);
        } else {
            merged.mergeFrom(*r.activity);
        }
        last = std::move(r);
    }
    CutStats cut;
    PipelineReport report;
    Netlist bespoke_nl = obtainDesign(
        progs, "design", &cut, &report,
        [&](CutStats *c, PipelineReport *r) {
            PassEnv env = makePassEnv(apps);
            return runTailorPipeline(baseline_, &merged, opts_.passes,
                                     env, c, r);
        });
    // Keep the merged tracker with the result for callers that need it.
    last.activity = std::make_unique<ActivityTracker>(std::move(merged));
    *out = BespokeDesign{std::move(bespoke_nl), cut, {},
                         std::move(last), std::move(report)};
    out->metrics = measure(out->netlist, apps);
    return true;
}

BespokeDesign
BespokeFlow::tailorCoarse(const Workload &app)
{
    AsmProgram prog = app.assembleProgram();
    AnalysisResult analysis = analyzeProgram(prog, app.name);
    bespoke_assert(analysis.completed,
                   "analysis hit caps for ", app.name);
    CutStats cut;
    PipelineReport report;
    // Module-level cutting shares the flow options with the
    // fine-grained design, so the artifact lives under its own stage.
    // The coarse baseline always runs the module-cut default pipeline:
    // it exists as the paper's Fig. 12 comparison point, not as a
    // target for the optional optimization passes.
    Netlist coarse = obtainDesign(
        hashProgram(prog), "coarse", &cut, &report,
        [&](CutStats *c, PipelineReport *r) {
            PassPipelineOptions coarse_opts;
            coarse_opts.moduleCut = true;
            return runTailorPipeline(baseline_, analysis.activity.get(),
                                     coarse_opts, {}, c, r);
        });
    BespokeDesign d{std::move(coarse), cut, {}, std::move(analysis),
                    std::move(report)};
    d.metrics = measure(d.netlist, {&app});
    return d;
}

} // namespace bespoke
