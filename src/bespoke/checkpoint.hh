/**
 * @file
 * Content-hashed flow checkpointing.
 *
 * Every expensive stage of the bespoke flow (activity analysis,
 * cutting & stitching + re-sizing, STA/power measurement) can persist
 * its artifact to a checkpoint directory and short-circuit on the next
 * run. Artifacts are keyed by content, never by name or mtime: a key is
 * the triple (netlist content hash, program hash, options hash), so a
 * changed binary, a changed baseline core, or a changed flow option
 * silently misses the cache and recomputes, while a killed run resumes
 * at the last completed stage bit for bit.
 *
 * Files are one JSON document per stage,
 * `<netlist>-<program>-<options>.<stage>.json` under the store
 * directory, written atomically (writer-unique temp file + rename, so
 * concurrent same-key savers never tear a read). Loads are
 * validated end to end — a netlist artifact re-hashes its content, a
 * tracker artifact must match the netlist size — and any mismatch is
 * treated as a miss with a warning, never an error: checkpoints are an
 * accelerator, not a source of truth.
 *
 * The store can be capped (`maxBytes`): every save sweeps the
 * directory and evicts least-recently-used artifacts, oldest access
 * time first, until the total size fits. The store maintains access
 * times itself (an explicit utimensat on every hit and save), so the
 * LRU order is immune to noatime/relatime mount options; the artifact
 * just written is never evicted, even when it alone exceeds the cap.
 */

#ifndef BESPOKE_BESPOKE_CHECKPOINT_HH
#define BESPOKE_BESPOKE_CHECKPOINT_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/analysis/activity_analysis.hh"
#include "src/isa/assembler.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/json.hh"

namespace bespoke
{

struct DesignMetrics;
struct FlowOptions;

/** Content-derived identity of one stage artifact. */
struct CheckpointKey
{
    uint64_t netlist = 0;  ///< contentHash() of the input netlist
    uint64_t program = 0;  ///< hash of the application ROM image(s)
    uint64_t options = 0;  ///< hash of every result-affecting option
};

/**
 * In-process coordination state for one checkpoint directory shared by
 * several stores: the in-flight stage table behind lockStage() and the
 * eviction-sweep lock. A store built without an explicit coordinator
 * gets a private one; clients sharing a directory across concurrent
 * flows (the job scheduler) pass the same coordinator to every store,
 * so "first runner computes, the rest wait then hit the store" spans
 * flows while per-store hit/miss counters stay exact.
 */
struct CheckpointCoordinator
{
    std::mutex m;
    std::condition_variable done;
    std::set<std::string> inflight;  ///< artifact paths being computed
    std::mutex sweepM;               ///< serializes LRU sweeps
};

/**
 * RAII in-flight marker for one (key, stage) artifact, handed out by
 * CheckpointStore::lockStage(). While held, any other lockStage() on
 * the same artifact (through any store sharing the coordinator)
 * blocks; waiters should re-try load() once granted — the first
 * runner's save() has usually landed by then. Movable, not copyable.
 * A lock from a disabled store is empty and never blocks anyone.
 */
class StageLock
{
  public:
    StageLock() = default;
    StageLock(StageLock &&o) noexcept
        : coord_(std::move(o.coord_)), path_(std::move(o.path_)),
          waited_(o.waited_)
    {
        o.coord_.reset();
        o.path_.clear();
    }
    StageLock &operator=(StageLock &&o) noexcept
    {
        if (this != &o) {
            release();
            coord_ = std::move(o.coord_);
            path_ = std::move(o.path_);
            waited_ = o.waited_;
            o.coord_.reset();
            o.path_.clear();
        }
        return *this;
    }
    ~StageLock() { release(); }

    StageLock(const StageLock &) = delete;
    StageLock &operator=(const StageLock &) = delete;

    /** True if another runner held this artifact before we got it. */
    bool waited() const { return waited_; }
    /** Drop the in-flight marker and wake waiters (idempotent). */
    void release();

  private:
    friend class CheckpointStore;
    StageLock(std::shared_ptr<CheckpointCoordinator> coord,
              std::string path, bool waited)
        : coord_(std::move(coord)), path_(std::move(path)),
          waited_(waited)
    {
    }

    std::shared_ptr<CheckpointCoordinator> coord_;
    std::string path_;
    bool waited_ = false;
};

class CheckpointStore
{
  public:
    /** Disabled store: every load misses, every save is a no-op. */
    CheckpointStore() = default;
    /**
     * Store rooted at `dir` (created if missing); "" disables.
     * `maxBytes` > 0 caps the total artifact size: each save evicts
     * least-recently-used artifacts until the store fits. 0 = no cap.
     * `coord` shares the in-flight table and sweep lock with other
     * stores on the same directory; null makes a private one.
     */
    explicit CheckpointStore(
        const std::string &dir, uint64_t maxBytes = 0,
        std::shared_ptr<CheckpointCoordinator> coord = nullptr);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    uint64_t maxBytes() const { return maxBytes_; }

    /** File path a (key, stage) artifact lives at. */
    std::string path(const CheckpointKey &key,
                     const std::string &stage) const;

    /**
     * Load and parse a stage artifact. False when disabled, absent, or
     * unparseable (the latter warns). Semantic validation is the
     * caller's job via the *FromJson deserializers.
     */
    bool load(const CheckpointKey &key, const std::string &stage,
              JsonValue *doc) const;

    /**
     * Persist a stage artifact atomically. The temp file carries a
     * writer-unique suffix, so two concurrent savers of the same key
     * never interleave into one file: each writes its own complete
     * temp and the atomic renames race benignly (the artifacts are
     * content-equal by construction — same key, same computation).
     */
    void save(const CheckpointKey &key, const std::string &stage,
              const JsonValue &doc) const;

    /**
     * Mark a (key, stage) artifact as being computed, blocking while
     * another runner (through any store sharing this coordinator)
     * holds it. Callers follow the double-checked discipline:
     * load() miss -> lockStage() -> load() again (the first runner's
     * save usually lands while we wait) -> compute -> save. Returns
     * an empty lock when the store is disabled.
     */
    StageLock lockStage(const CheckpointKey &key,
                        const std::string &stage) const;

    /** @name Hit/miss counters (observability for tests and logs) */
    /// @{
    size_t hits() const { return hits_.load(); }
    size_t misses() const { return misses_.load(); }
    /** Artifacts removed by the LRU cap, over this store's lifetime. */
    size_t evictions() const { return evictions_.load(); }
    /// @}

  private:
    /**
     * Evict artifacts, oldest access time first, until the store fits
     * in maxBytes_. `keep` (the artifact just written) is exempt.
     */
    void sweep(const std::string &keep) const;

    std::string dir_;
    uint64_t maxBytes_ = 0;
    std::shared_ptr<CheckpointCoordinator> coord_;
    mutable std::atomic<size_t> hits_{0};
    mutable std::atomic<size_t> misses_{0};
    mutable std::atomic<size_t> evictions_{0};
};

/** @name Key-material hashing (FNV-1a over canonical bytes) */
/// @{

/** Seed for composing several hashes with hashCombine(). */
constexpr uint64_t kHashBasis = 14695981039346656037ull;

/** Fold a 64-bit value into a running FNV-1a hash. */
uint64_t hashCombine(uint64_t h, uint64_t v);

/** Hash of the assembled ROM image (what the analysis actually sees). */
uint64_t hashProgram(const AsmProgram &prog);

/**
 * Hash of the analysis options that affect the *result*. `threads` and
 * `simMode` are deliberately excluded: both engines and any worker
 * count produce bit-identical toggle sets and counters (pinned by the
 * tier-1 equivalence tests), so artifacts are shared across them.
 */
uint64_t hashAnalysisOptions(const AnalysisOptions &opts);

/**
 * Hash of every flow option that affects design or metrics artifacts
 * (analysis options, power-run configuration, timing and power model
 * parameters). `checkpointDir` itself is naturally excluded.
 */
uint64_t hashFlowOptions(const FlowOptions &opts);

/// @}

/** @name Stage artifact serializers */
/// @{

/**
 * Analysis artifact: the tracker's reset-time values and may-toggle
 * set plus the exploration counters. Only completed results should be
 * saved; restored results have completed == true.
 */
JsonValue analysisToJson(const AnalysisResult &r);
bool analysisFromJson(const JsonValue &doc, const Netlist &netlist,
                      AnalysisResult *out, std::string *err);

/**
 * Design artifact: the cut, stitched, re-sized netlist + cut stats,
 * plus (optionally) the pipeline report that produced it. A null
 * `pipeline` writes/accepts artifacts without the report section, so
 * pre-pipeline artifacts stay loadable (they restore an empty report).
 */
JsonValue designToJson(const Netlist &sized, const CutStats &cut,
                       const PipelineReport *pipeline = nullptr);
bool designFromJson(const JsonValue &doc, Netlist *netlist,
                    CutStats *cut, std::string *err,
                    PipelineReport *pipeline = nullptr);

/** Metrics artifact: a DesignMetrics, doubles preserved exactly. */
JsonValue metricsToJson(const DesignMetrics &m);
bool metricsFromJson(const JsonValue &doc, DesignMetrics *out,
                     std::string *err);

/// @}

} // namespace bespoke

#endif // BESPOKE_BESPOKE_CHECKPOINT_HH
