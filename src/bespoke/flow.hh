/**
 * @file
 * End-to-end bespoke-processor flow (paper Figs. 5 and 8).
 *
 * The flow owns the baseline general-purpose core (built, drive-sized,
 * and timed once: the baseline clock period is the sized design's
 * achievable period, mirroring the paper's area-optimized 100 MHz
 * operating point). tailor() then produces a bespoke design for one
 * application: activity analysis -> cutting & stitching -> re-synthesis
 * -> re-sizing (downsizing, now that fanouts shrank) -> STA -> power.
 * tailorMulti() unions the toggleable-gate sets of several applications
 * before cutting (Fig. 8).
 */

#ifndef BESPOKE_BESPOKE_FLOW_HH
#define BESPOKE_BESPOKE_FLOW_HH

#include <functional>
#include <memory>

#include "src/analysis/activity_analysis.hh"
#include "src/bespoke/checkpoint.hh"
#include "src/power/power_model.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** Area/power/timing summary of one design under one workload set. */
struct DesignMetrics
{
    size_t gates = 0;
    size_t flops = 0;
    double areaUm2 = 0.0;
    double criticalPathPs = 0.0;
    double slackFraction = 0.0;  ///< (period - critical) / period
    PowerReport powerNominal;
    double vmin = 1.0;
    PowerReport powerAtVmin;
};

/** A tailored design plus how it was derived. */
struct BespokeDesign
{
    Netlist netlist;
    CutStats cut;
    DesignMetrics metrics;
    AnalysisResult analysis;  ///< analysis of the *last* application
    /** What the tailoring pipeline did (per-pass stats, rewrite count,
     *  clock-gating plan). Restored from checkpointed designs. */
    PipelineReport pipeline;
};

struct FlowOptions
{
    AnalysisOptions analysis;
    /** Concrete runs per workload when measuring switching activity. */
    int powerInputsPerWorkload = 2;
    uint64_t powerSeed = 2024;
    /**
     * Lane-plane width for batched power replays (0 = resolvePlaneBits
     * default). Purely an execution strategy — results are bit-identical
     * at any width — so it is excluded from hashFlowOptions() and does
     * not invalidate checkpointed metrics.
     */
    int planeBits = 0;
    TimingParams timing;
    PowerParams power;
    /**
     * Tailoring pass pipeline configuration. The default reproduces the
     * historical cut + re-synthesis flow bit-identically; enabling the
     * optional passes (rewrite search, clock gating) changes design
     * artifacts, so the configuration is part of hashFlowOptions().
     */
    PassPipelineOptions passes;
    /**
     * When non-empty, stage artifacts (analysis, cut design, metrics)
     * are persisted here and reused by later runs with matching
     * content-hashed keys; a killed run resumes at the last completed
     * stage, a repeated run short-circuits entirely. "" disables.
     */
    std::string checkpointDir;
    /**
     * Cap on the checkpoint store's total size: every save evicts
     * least-recently-used artifacts until the store fits. 0 = no cap.
     * Like checkpointDir, excluded from hashFlowOptions().
     */
    uint64_t checkpointMaxBytes = 0;
    /**
     * In-process coordination shared with other flows on the same
     * checkpoint directory (in-flight stage dedup + sweep lock): when
     * several concurrent flows submit the same (netlist, program,
     * options), the first computes each stage and the rest wait, then
     * load the saved artifact. Null = the flow coordinates only with
     * itself. Excluded from hashFlowOptions(), like checkpointDir.
     */
    std::shared_ptr<CheckpointCoordinator> checkpointCoordinator;
    /**
     * Invoked after each stage the flow actually *computes* (checkpoint
     * hits skip it) with the stage name ("analysis", "design",
     * "coarse", "metrics") and the wall seconds the computation took.
     * Progress reporting only — excluded from hashFlowOptions(). Must
     * be thread-safe if the flow is shared across threads.
     */
    std::function<void(const std::string &stage, double seconds)>
        stageCallback;
};

class BespokeFlow
{
  public:
    explicit BespokeFlow(FlowOptions opts = {});
    /**
     * Flow over an externally supplied baseline core (e.g. an imported
     * netlist): it is drive-sized and timed exactly like the built-in
     * core, and every checkpoint key hashes the sized input.
     */
    BespokeFlow(FlowOptions opts, Netlist baseline);

    const Netlist &baseline() const { return baseline_; }
    /** Clock period (ps) all designs are held to. */
    double clockPeriodPs() const { return clockPeriodPs_; }

    /** Metrics of the baseline core running the given workloads. */
    DesignMetrics measureBaseline(
        const std::vector<const Workload *> &apps);

    /** Tailor to a single application. */
    BespokeDesign tailor(const Workload &app);

    /** Tailor to several applications (union of toggleable gates). */
    BespokeDesign tailorMulti(const std::vector<const Workload *> &apps);

    /**
     * tailor() that reports capped (incomplete) analysis through `err`
     * instead of dying — the job scheduler's entry point, where one bad
     * job must not take down the queue. Returns false (with *out
     * untouched) iff analysis hit its caps.
     */
    bool tryTailor(const Workload &app, BespokeDesign *out,
                   std::string *err);

    /** tryTailor() over a workload set (union of toggleable gates). */
    bool tryTailorMulti(const std::vector<const Workload *> &apps,
                        BespokeDesign *out, std::string *err);

    /** Module-level coarse-grained baseline (paper Fig. 12). */
    BespokeDesign tailorCoarse(const Workload &app);

    /** Activity analysis only (used by Fig. 10 and Fig. 13 sweeps). */
    AnalysisResult analyze(const Workload &app);

    /**
     * Measure any netlist (already sized) against a workload set:
     * STA + Vmin + activity-based power.
     */
    DesignMetrics measure(const Netlist &netlist,
                          const std::vector<const Workload *> &apps);

    const FlowOptions &options() const { return opts_; }

    /** The stage-artifact store (disabled unless checkpointDir set). */
    const CheckpointStore &checkpoints() const { return store_; }

  private:
    /** analyze() body, reusing an already-assembled program. */
    AnalysisResult analyzeProgram(const AsmProgram &prog,
                                  const std::string &name);
    /**
     * Cut-design stage with checkpointing: load the sized bespoke
     * netlist (and its pipeline report) for (baseline, program set,
     * options) from the store, or run `build` + sizeForLoads and save
     * the result.
     */
    Netlist obtainDesign(
        uint64_t program_hash, const char *stage, CutStats *cut,
        PipelineReport *report,
        const std::function<Netlist(CutStats *, PipelineReport *)>
            &build);
    /**
     * Pass environment for the tailoring pipeline: flow model
     * parameters, the baseline clock budget, and replay providers over
     * `apps` mirroring measure()'s power replay (same seed and input
     * count, so rewrite-search scores are measured the same way the
     * final design is).
     */
    PassEnv makePassEnv(std::vector<const Workload *> apps) const;

    FlowOptions opts_;
    Netlist baseline_;
    double clockPeriodPs_ = 0.0;
    CheckpointStore store_;
    uint64_t baselineHash_ = 0;
    uint64_t analysisOptsHash_ = 0;
    uint64_t flowOptsHash_ = 0;
};

} // namespace bespoke

#endif // BESPOKE_BESPOKE_FLOW_HH
