#include "src/bespoke/equiv_check.hh"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

/** Joint state of the two machines. */
struct PairState
{
    MachineState a;
    MachineState b;

    bool
    substateOf(const PairState &c) const
    {
        return a.substateOf(c.a) && b.substateOf(c.b);
    }

    static PairState
    merge(const PairState &x, const PairState &y)
    {
        return {MachineState::merge(x.a, y.a),
                MachineState::merge(x.b, y.b)};
    }

    uint64_t
    hash() const
    {
        return a.hash() * 0x9e3779b97f4a7c15ull + b.hash();
    }
};

class EquivEngine
{
  public:
    EquivEngine(const Netlist &na, const Netlist &nb,
                const AsmProgram &prog, const AnalysisOptions &opts)
        : prog_(prog), opts_(opts), socA_(na, prog, true),
          socB_(nb, prog, true), haltAddrs_(haltAddresses(prog))
    {
        // Output ports to compare, by name (present in both designs).
        for (const auto &[name, id] : na.ports()) {
            if (na.gate(id).type != CellType::OUTPUT)
                continue;
            if (nb.hasPort(name))
                ports_.push_back({id, nb.port(name), name});
        }
    }

    EquivResult
    run()
    {
        EquivResult res;
        socA_.setGpioIn(SWord::allX());
        socA_.setIrqExt(Logic::X);
        socA_.reset();
        socB_.setGpioIn(SWord::allX());
        socB_.setIrqExt(Logic::X);
        socB_.reset();

        work_.push_back(capture());
        while (!work_.empty() && res.equivalent) {
            if (res.pathsExplored >= opts_.maxPaths ||
                cycles_ >= opts_.maxTotalCycles) {
                res.completed = false;
                break;
            }
            PairState s = std::move(work_.back());
            work_.pop_back();
            res.pathsExplored++;
            runPath(std::move(s), res);
        }
        res.cyclesChecked = cycles_;
        return res;
    }

  private:
    PairState
    capture() const
    {
        PairState s;
        s.a.seq = socA_.sim().seqState();
        s.a.env = socA_.envState();
        s.a.lastFetchPc = lastFetchPc_;
        s.b.seq = socB_.sim().seqState();
        s.b.env = socB_.envState();
        s.b.lastFetchPc = lastFetchPc_;
        return s;
    }

    void
    restore(const PairState &s)
    {
        socA_.sim().restoreSeqState(s.a.seq);
        socA_.restoreEnvState(s.a.env);
        socB_.sim().restoreSeqState(s.b.seq);
        socB_.restoreEnvState(s.b.env);
        lastFetchPc_ = s.a.lastFetchPc;
    }

    void
    evalBoth()
    {
        socA_.evalOnly();
        socB_.evalOnly();
    }

    void
    finishBoth()
    {
        socA_.finishCycle();
        socB_.finishCycle();
        cycles_++;
    }

    bool
    compareOutputs(EquivResult &res)
    {
        for (const auto &p : ports_) {
            Logic va = socA_.sim().value(p.idA);
            Logic vb = socB_.sim().value(p.idB);
            res.outputsCompared++;
            if (isKnown(va) && isKnown(vb) && va != vb) {
                std::ostringstream os;
                os << "output '" << p.name << "' differs at cycle "
                   << cycles_ << " (pc 0x" << std::hex << lastFetchPc_
                   << "): original=" << logicChar(va)
                   << " bespoke=" << logicChar(vb);
                res.firstMismatch = os.str();
                res.equivalent = false;
                return false;
            }
        }
        return true;
    }

    bool
    compareRam(EquivResult &res)
    {
        const auto &ra = socA_.ram();
        const auto &rb = socB_.ram();
        for (size_t i = 0; i < ra.size(); i++) {
            uint16_t both = ra[i].known & rb[i].known;
            if ((ra[i].val ^ rb[i].val) & both) {
                std::ostringstream os;
                os << "data memory differs at 0x" << std::hex
                   << (kRamBase + 2 * i) << ": original "
                   << ra[i].toString() << " vs bespoke "
                   << rb[i].toString();
                res.firstMismatch = os.str();
                res.equivalent = false;
                return false;
            }
        }
        return true;
    }

    bool
    mergePoint(uint32_t key, PairState &cur, bool &widened)
    {
        widened = false;
        if (!exactSeen_[key].insert(cur.hash()).second)
            return true;
        int &visits = visitCount_[key];
        visits++;
        if (visits <= opts_.concreteVisits)
            return false;
        auto it = conservative_.find(key);
        if (it == conservative_.end()) {
            conservative_.emplace(key, cur);
            return false;
        }
        if (cur.substateOf(it->second))
            return true;
        it->second = PairState::merge(it->second, cur);
        cur = it->second;
        widened = true;
        return false;
    }

    /** Decision values come from machine A; forced in both. */
    struct XDec
    {
        GateId netA;
        GateId netB;
        int kind;
    };

    std::optional<XDec>
    firstXDecision() const
    {
        if (socA_.decIrq0() == Logic::X || socB_.decIrq0() == Logic::X)
            return XDec{socA_.decIrq0Net(), socB_.decIrq0Net(), 1};
        if (socA_.decIrq1() == Logic::X || socB_.decIrq1() == Logic::X)
            return XDec{socA_.decIrq1Net(), socB_.decIrq1Net(), 2};
        if (socA_.decBranch() == Logic::X ||
            socB_.decBranch() == Logic::X) {
            return XDec{socA_.decBranchNet(), socB_.decBranchNet(), 0};
        }
        return std::nullopt;
    }

    void
    forkRec(const PairState &pre,
            const std::vector<std::pair<XDec, Logic>> &forces)
    {
        for (Logic v : {Logic::Zero, Logic::One}) {
            restore(pre);
            socA_.sim().clearForces();
            socB_.sim().clearForces();
            for (const auto &[dec, val] : forces) {
                socA_.sim().force(dec.netA, val);
                socB_.sim().force(dec.netB, val);
            }
            evalBoth();
            auto d = firstXDecision();
            bespoke_assert(d, "fork invariant violated");
            socA_.sim().force(d->netA, v);
            socB_.sim().force(d->netB, v);
            evalBoth();
            if (firstXDecision()) {
                auto f = forces;
                f.push_back({*d, v});
                socA_.sim().clearForces();
                socB_.sim().clearForces();
                forkRec(pre, f);
                continue;
            }
            finishBoth();
            socA_.sim().clearForces();
            socB_.sim().clearForces();
            work_.push_back(capture());
        }
    }

    void
    runPath(PairState start, EquivResult &res)
    {
        restore(start);
        while (true) {
            if (cycles_ >= opts_.maxTotalCycles)
                return;
            evalBoth();
            if (!compareOutputs(res))
                return;

            if (socA_.stFetch() == Logic::One) {
                SWord pc = socA_.pc();
                if (!pc.fullyKnown())
                    return;  // PC enumeration handled by the analysis;
                             // for equivalence we stop this path after
                             // having compared everything up to here.
                lastFetchPc_ = pc.val;
                bool halted = false;
                for (uint16_t h : haltAddrs_)
                    halted |= h == pc.val;
                if (halted) {
                    compareRam(res);
                    return;
                }
            }

            auto d = firstXDecision();
            if (d) {
                PairState cur = capture();
                bool widened;
                if (mergePoint((lastFetchPc_ << 2) |
                                   static_cast<uint32_t>(d->kind),
                               cur, widened)) {
                    return;
                }
                if (widened)
                    restore(cur);
                forkRec(cur, {});
                return;
            }

            if (socA_.ctlXfer() == Logic::One) {
                PairState cur = capture();
                bool widened;
                if (mergePoint((lastFetchPc_ << 2) | 3u, cur, widened))
                    return;
                if (widened) {
                    restore(cur);
                    evalBoth();
                    if (!compareOutputs(res))
                        return;
                    if (firstXDecision()) {
                        PairState cur2 = capture();
                        forkRec(cur2, {});
                        return;
                    }
                }
            }
            finishBoth();
        }
    }

    struct PortPair
    {
        GateId idA;
        GateId idB;
        std::string name;
    };

    const AsmProgram &prog_;
    AnalysisOptions opts_;
    Soc socA_;
    Soc socB_;
    std::vector<uint16_t> haltAddrs_;
    std::vector<PortPair> ports_;
    std::vector<PairState> work_;
    std::unordered_map<uint32_t, PairState> conservative_;
    std::unordered_map<uint32_t, int> visitCount_;
    std::unordered_map<uint32_t, std::unordered_set<uint64_t>>
        exactSeen_;
    uint16_t lastFetchPc_ = 0;
    uint64_t cycles_ = 0;
};

} // namespace

EquivResult
checkSymbolicEquivalence(const Netlist &original,
                         const Netlist &bespoke_nl,
                         const AsmProgram &prog,
                         const AnalysisOptions &opts)
{
    EquivEngine engine(original, bespoke_nl, prog, opts);
    return engine.run();
}

} // namespace bespoke
