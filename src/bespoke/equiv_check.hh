/**
 * @file
 * Symbolic equivalence check between the original and a bespoke
 * processor (paper Sec. 5.1, first verification method).
 *
 * Both netlists are driven through the same input-independent symbolic
 * execution tree (same X inputs, same forced decisions at forks); every
 * cycle, all primary outputs are compared, and at the end of every path
 * the data memories are compared. A mismatch is any net/location where
 * both designs hold *known* values that differ — an X in the original
 * is an over-approximation and cannot witness inequivalence.
 *
 * Note that industrial equivalence checkers cannot perform this check:
 * the designs are only equivalent *for this application*, not in
 * general (paper footnote 3).
 */

#ifndef BESPOKE_BESPOKE_EQUIV_CHECK_HH
#define BESPOKE_BESPOKE_EQUIV_CHECK_HH

#include "src/analysis/activity_analysis.hh"

namespace bespoke
{

struct EquivResult
{
    bool equivalent = true;
    bool completed = true;  ///< exploration finished under the caps
    uint64_t cyclesChecked = 0;
    uint64_t pathsExplored = 0;
    uint64_t outputsCompared = 0;
    std::string firstMismatch;
};

/**
 * Check that `bespoke_nl` is output-equivalent to `original` for every
 * possible execution of the program.
 */
EquivResult checkSymbolicEquivalence(const Netlist &original,
                                     const Netlist &bespoke_nl,
                                     const AsmProgram &prog,
                                     const AnalysisOptions &opts = {});

} // namespace bespoke

#endif // BESPOKE_BESPOKE_EQUIV_CHECK_HH
