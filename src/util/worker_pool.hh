/**
 * @file
 * A small general-purpose worker pool.
 *
 * N threads service a FIFO task queue. Tasks are plain closures; the
 * pool makes no assumptions about what they do. drain() blocks until
 * the queue is empty AND every in-flight task has returned, so a task
 * may post further tasks and drain() still waits for the whole wave.
 *
 * The parallel activity analysis posts one long-lived task per worker
 * (each pops exploration states from a shared frontier until it is
 * exhausted); other subsystems can reuse the pool for any
 * embarrassingly parallel sweep.
 *
 * Tasks must not throw: the library's error discipline is
 * panic/fatal (abort/exit), and an exception escaping a task would
 * terminate the process anyway.
 */

#ifndef BESPOKE_UTIL_WORKER_POOL_HH
#define BESPOKE_UTIL_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bespoke
{

class WorkerPool
{
  public:
    /** Threads to use when a caller asks for "all cores" (>= 1). */
    static int defaultThreadCount();

    /** @param threads worker-thread count; 0 = defaultThreadCount(). */
    explicit WorkerPool(int threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int size() const { return static_cast<int>(threads_.size()); }

    /** Enqueue one task; runs on some worker thread. */
    void post(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void drain();

    /**
     * Convenience for SPMD work: run body(i) for every worker index
     * i in [0, size()) concurrently and block until all return.
     */
    void runPerWorker(const std::function<void(int)> &body);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex m_;
    std::condition_variable wake_;   ///< workers: work available / stop
    std::condition_variable idle_;   ///< drain(): queue empty + quiescent
    int running_ = 0;                ///< tasks currently executing
    bool stop_ = false;
};

} // namespace bespoke

#endif // BESPOKE_UTIL_WORKER_POOL_HH
