/**
 * @file
 * A small general-purpose worker pool.
 *
 * N threads service a FIFO task queue. Tasks are plain closures; the
 * pool makes no assumptions about what they do. drain() blocks until
 * the queue is empty AND every in-flight task has returned, so a task
 * may post further tasks and drain() still waits for the whole wave.
 *
 * The parallel activity analysis posts one long-lived task per worker
 * (each pops exploration states from a shared frontier until it is
 * exhausted); other subsystems can reuse the pool for any
 * embarrassingly parallel sweep.
 *
 * Tasks must not throw: the library's error discipline is
 * panic/fatal (abort/exit), and an exception escaping a task would
 * terminate the process anyway.
 */

#ifndef BESPOKE_UTIL_WORKER_POOL_HH
#define BESPOKE_UTIL_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bespoke
{

class ThreadBudget;

/**
 * RAII grant of worker slots from a ThreadBudget. Movable, not
 * copyable; the slots return to the budget on release() or
 * destruction. A default-constructed lease is empty (threads() == 0).
 */
class ThreadLease
{
  public:
    ThreadLease() = default;
    ThreadLease(ThreadLease &&o) noexcept
        : budget_(o.budget_), n_(o.n_)
    {
        o.budget_ = nullptr;
        o.n_ = 0;
    }
    ThreadLease &operator=(ThreadLease &&o) noexcept
    {
        if (this != &o) {
            release();
            budget_ = o.budget_;
            n_ = o.n_;
            o.budget_ = nullptr;
            o.n_ = 0;
        }
        return *this;
    }
    ~ThreadLease() { release(); }

    ThreadLease(const ThreadLease &) = delete;
    ThreadLease &operator=(const ThreadLease &) = delete;

    /** Slots held; 0 for an empty or released lease. */
    int threads() const { return n_; }
    /** Return the slots to the budget early (idempotent). */
    void release();

  private:
    friend class ThreadBudget;
    ThreadLease(ThreadBudget *budget, int n) : budget_(budget), n_(n) {}

    ThreadBudget *budget_ = nullptr;
    int n_ = 0;
};

/**
 * A fixed budget of worker slots shared by many concurrent clients
 * (e.g. scheduler jobs leasing analysis workers from one global pool
 * instead of each spawning its own threads). acquire(want) blocks
 * until `want` slots are free and hands them out as an RAII lease.
 * Service order is strictly FIFO: while an earlier request waits,
 * later requests queue behind it even if their smaller ask would fit,
 * so a wide job cannot be starved by a stream of narrow ones.
 */
class ThreadBudget
{
  public:
    /** @param total slot count; 0 = defaultThreadCount(). */
    explicit ThreadBudget(int total);

    ThreadBudget(const ThreadBudget &) = delete;
    ThreadBudget &operator=(const ThreadBudget &) = delete;

    int total() const { return total_; }
    /** Slots currently free (racy snapshot, for observability). */
    int free() const;

    /**
     * Block until `want` slots (clamped to [1, total()]) are free and
     * this request is first in line, then take them.
     */
    ThreadLease acquire(int want);

  private:
    friend class ThreadLease;
    void release(int n);

    int total_ = 0;
    mutable std::mutex m_;
    std::condition_variable grant_;
    int free_ = 0;
    uint64_t nextTicket_ = 0;  ///< next ticket to hand out
    uint64_t serving_ = 0;     ///< ticket currently first in line
};

class WorkerPool
{
  public:
    /** Threads to use when a caller asks for "all cores" (>= 1). */
    static int defaultThreadCount();

    /** @param threads worker-thread count; 0 = defaultThreadCount(). */
    explicit WorkerPool(int threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int size() const { return static_cast<int>(threads_.size()); }

    /** Enqueue one task; runs on some worker thread. */
    void post(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void drain();

    /**
     * Convenience for SPMD work: run body(i) for every worker index
     * i in [0, size()) concurrently and block until all return.
     */
    void runPerWorker(const std::function<void(int)> &body);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex m_;
    std::condition_variable wake_;   ///< workers: work available / stop
    std::condition_variable idle_;   ///< drain(): queue empty + quiescent
    int running_ = 0;                ///< tasks currently executing
    bool stop_ = false;
};

} // namespace bespoke

#endif // BESPOKE_UTIL_WORKER_POOL_HH
