#include "src/util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/logging.hh"

namespace bespoke
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    bespoke_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    bespoke_assert(kind_ == Kind::Number, "JSON value is not a number");
    return num_;
}

const std::string &
JsonValue::asString() const
{
    bespoke_assert(kind_ == Kind::String, "JSON value is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    bespoke_assert(kind_ == Kind::Array, "JSON value is not an array");
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    bespoke_assert(kind_ == Kind::Object, "JSON value is not an object");
    return obj_;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    bespoke_assert(kind_ == Kind::Array, "push on non-array JSON value");
    arr_.push_back(std::move(v));
    return *this;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    bespoke_assert(kind_ == Kind::Object, "set on non-object JSON value");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double v)
{
    bespoke_assert(std::isfinite(v), "cannot serialize non-finite JSON "
                   "number");
    // Integers print without an exponent/fraction; everything else uses
    // %.17g so parse(dump(x)) round-trips exactly.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        out += std::to_string(static_cast<long long>(v));
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<size_t>(indent) * d, ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        formatNumber(out, num_);
        break;
      case Kind::String:
        escapeString(out, str_);
        break;
      case Kind::Array:
        out += '[';
        for (size_t i = 0; i < arr_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (size_t i = 0; i < obj_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeString(out, obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    run(JsonValue &out, std::string &err)
    {
        skipWs();
        if (!parseValue(out)) {
            err = err_ + " at byte " + std::to_string(pos_);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            err = "trailing characters at byte " + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            pos_++;
        }
    }

    bool
    fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = msg;
        return false;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        out = std::move(v);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            return literal("null", JsonValue(), out);
          case 't':
            return literal("true", JsonValue::boolean(true), out);
          case 'f':
            return literal("false", JsonValue::boolean(false), out);
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(JsonValue &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue::str(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &s)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                s += e;
                break;
              case 'b':
                s += '\b';
                break;
              case 'f':
                s += '\f';
                break;
              case 'n':
                s += '\n';
                break;
              case 'r':
                s += '\r';
                break;
              case 't':
                s += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not needed by any baseline producer).
                if (cp < 0x80) {
                    s += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    s += static_cast<char>(0xc0 | (cp >> 6));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    s += static_cast<char>(0xe0 | (cp >> 12));
                    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            pos_++;
        }
        if (pos_ == start)
            return fail("expected value");
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number '" + tok + "'");
        out = JsonValue::number(v);
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        pos_++;  // consume '['
        out = JsonValue::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            JsonValue elem;
            skipWs();
            if (!parseValue(elem))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        pos_++;  // consume '{'
        out = JsonValue::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after object key");
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.set(key, std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string err_;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &err)
{
    return Parser(text).run(out, err);
}

} // namespace bespoke
