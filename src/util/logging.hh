/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * panic()  - internal invariant violated (a bug in this library); aborts.
 * fatal()  - user error (bad input file, bad configuration); exits cleanly.
 * warn()   - something questionable happened but execution continues.
 * inform() - status message.
 */

#ifndef BESPOKE_UTIL_LOGGING_HH
#define BESPOKE_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace bespoke
{

namespace detail
{

/** Stream-compose the variadic arguments into one string. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity switch; benches set this to silence inform(). */
void setVerbose(bool verbose);
bool verbose();

} // namespace bespoke

#define bespoke_panic(...)                                                   \
    ::bespoke::detail::panicImpl(__FILE__, __LINE__,                         \
        ::bespoke::detail::composeMessage(__VA_ARGS__))

#define bespoke_fatal(...)                                                   \
    ::bespoke::detail::fatalImpl(__FILE__, __LINE__,                         \
        ::bespoke::detail::composeMessage(__VA_ARGS__))

#define bespoke_warn(...)                                                    \
    ::bespoke::detail::warnImpl(                                             \
        ::bespoke::detail::composeMessage(__VA_ARGS__))

#define bespoke_inform(...)                                                  \
    ::bespoke::detail::informImpl(                                           \
        ::bespoke::detail::composeMessage(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define bespoke_assert(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bespoke::detail::panicImpl(__FILE__, __LINE__,                 \
                ::bespoke::detail::composeMessage(                           \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));         \
        }                                                                    \
    } while (0)

#endif // BESPOKE_UTIL_LOGGING_HH
