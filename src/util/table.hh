/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style tables and figure data series.
 */

#ifndef BESPOKE_UTIL_TABLE_HH
#define BESPOKE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace bespoke
{

/**
 * Accumulates rows of string cells and renders them as an aligned
 * ASCII table. Numeric convenience setters format with fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; subsequent add() calls append cells to it. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(double value, int precision = 1);
    Table &add(long value);
    Table &add(int value) { return add(static_cast<long>(value)); }
    Table &add(size_t value) { return add(static_cast<long>(value)); }

    /** Render the table, with a title line above it. */
    std::string render(const std::string &title = "") const;

    /** Render and write to stdout. */
    void print(const std::string &title = "") const;

    /** @name Raw cell access (bench baseline JSON emission) */
    /// @{
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }
    /// @}

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision);

} // namespace bespoke

#endif // BESPOKE_UTIL_TABLE_HH
