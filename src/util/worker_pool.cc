#include "src/util/worker_pool.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

void
ThreadLease::release()
{
    if (budget_ && n_ > 0)
        budget_->release(n_);
    budget_ = nullptr;
    n_ = 0;
}

ThreadBudget::ThreadBudget(int total)
    : total_(total <= 0 ? WorkerPool::defaultThreadCount() : total),
      free_(total_)
{
}

int
ThreadBudget::free() const
{
    std::lock_guard<std::mutex> lk(m_);
    return free_;
}

ThreadLease
ThreadBudget::acquire(int want)
{
    want = std::clamp(want, 1, total_);
    std::unique_lock<std::mutex> lk(m_);
    uint64_t ticket = nextTicket_++;
    grant_.wait(lk, [&] { return serving_ == ticket && free_ >= want; });
    serving_++;
    free_ -= want;
    // The next ticket in line may fit in the remaining slots.
    grant_.notify_all();
    return ThreadLease(this, want);
}

void
ThreadBudget::release(int n)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        free_ += n;
        bespoke_assert(free_ <= total_,
                       "ThreadLease released more slots than leased");
    }
    grant_.notify_all();
}

int
WorkerPool::defaultThreadCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

WorkerPool::WorkerPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    threads_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; i++)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::post(std::function<void()> task)
{
    bespoke_assert(task, "posted an empty task");
    {
        std::lock_guard<std::mutex> lk(m_);
        bespoke_assert(!stop_, "post() on a stopping WorkerPool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    idle_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

void
WorkerPool::runPerWorker(const std::function<void(int)> &body)
{
    for (int i = 0; i < size(); i++)
        post([&body, i] { body(i); });
    drain();
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        wake_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty())
            return;
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        running_++;
        lk.unlock();
        task();
        lk.lock();
        running_--;
        if (queue_.empty() && running_ == 0)
            idle_.notify_all();
    }
}

} // namespace bespoke
