/**
 * @file
 * Minimal JSON document model, writer, and recursive-descent parser.
 *
 * Exists for the golden bench baselines (bench/baselines/): the
 * bench harnesses emit machine-readable results with dump() and the
 * --check mode re-reads committed baselines with parse(). Object member
 * order is preserved so dumps are deterministic and diffs are stable.
 * Supports the full JSON value grammar; numbers are doubles (all bench
 * metrics fit), strings are byte strings with standard escapes.
 */

#ifndef BESPOKE_UTIL_JSON_HH
#define BESPOKE_UTIL_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace bespoke
{

class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements (fatal if not an array). */
    const std::vector<JsonValue> &items() const;
    /** Object members in insertion order (fatal if not an object). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Append to an array. */
    JsonValue &push(JsonValue v);
    /** Insert/overwrite an object member; returns *this for chaining. */
    JsonValue &set(const std::string &key, JsonValue v);
    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Serialize. indent > 0 pretty-prints with that many spaces per
     * nesting level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse a complete JSON text. Returns false and fills `err` with a
     * message including the byte offset on malformed input.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &err);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

} // namespace bespoke

#endif // BESPOKE_UTIL_JSON_HH
