/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro128**).
 *
 * All experiments in this repository must be reproducible run-to-run, so
 * every randomized component takes an explicit seed and uses this generator
 * rather than std::random_device.
 */

#ifndef BESPOKE_UTIL_RNG_HH
#define BESPOKE_UTIL_RNG_HH

#include <cstdint>

namespace bespoke
{

/** Small, fast, seedable PRNG used by workload input generators. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the xoshiro state.
        uint64_t z = seed;
        for (int i = 0; i < 4; i++) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
            state[i] = static_cast<uint32_t>((t ^ (t >> 31)) >> 16) | 1u;
        }
    }

    /** Next raw 32-bit value. */
    uint32_t
    next()
    {
        uint32_t result = rotl(state[1] * 5, 7) * 9;
        uint32_t t = state[1] << 9;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 11);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint32_t
    below(uint32_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(below(static_cast<uint32_t>(
            hi - lo + 1)));
    }

    /** Uniform 16-bit value. */
    uint16_t word() { return static_cast<uint16_t>(next()); }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint32_t num, uint32_t den)
    {
        return below(den) < num;
    }

  private:
    static uint32_t
    rotl(uint32_t x, int k)
    {
        return (x << k) | (x >> (32 - k));
    }

    uint32_t state[4];
};

} // namespace bespoke

#endif // BESPOKE_UTIL_RNG_HH
