#include "src/util/table.hh"

#include <cstdio>
#include <sstream>

#include "src/util/logging.hh"

namespace bespoke
{

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    bespoke_assert(!rows_.empty(), "add() before row()");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double value, int precision)
{
    return add(formatFixed(value, precision));
}

Table &
Table::add(long value)
{
    return add(std::to_string(value));
}

std::string
Table::render(const std::string &title) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    if (!title.empty())
        os << title << "\n";

    auto emit_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < widths.size(); c++) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << " " << cell
               << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    os << "|";
    for (size_t c = 0; c < widths.size(); c++)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
Table::print(const std::string &title) const
{
    std::fputs(render(title).c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace bespoke
