#include "src/isa/assembler.hh"

#include <cctype>
#include <sstream>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Split on commas that are not inside parentheses. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> parts;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(')
            depth++;
        if (c == ')')
            depth--;
        if (c == ',' && depth == 0) {
            parts.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Simple expression grammar: term (('+'|'-') term)*, term = num|sym. */
class ExprEval
{
  public:
    ExprEval(const std::map<std::string, uint16_t> &symbols, bool strict)
        : symbols_(symbols), strict_(strict)
    {}

    /** Returns false if an unresolved symbol was seen (non-strict). */
    bool
    eval(const std::string &text, int line, int32_t &out)
    {
        pos_ = 0;
        text_ = trim(text);
        line_ = line;
        ok_ = true;
        int32_t v = parseSum();
        skipWs();
        if (pos_ != text_.size())
            bespoke_fatal("line ", line_, ": bad expression '", text_, "'");
        out = v;
        return ok_;
    }

    /** True if the expression contains no symbols at all. */
    static bool
    isLiteral(const std::string &text)
    {
        for (size_t i = 0; i < text.size(); i++) {
            char c = text[i];
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                // 0x... hex digits are fine.
                if (i >= 1 && (text[i - 1] == 'x' || text[i - 1] == 'X') &&
                    i >= 2 && text[i - 2] == '0') {
                    continue;
                }
                if ((c == 'x' || c == 'X') && i >= 1 && text[i - 1] == '0')
                    continue;
                if (std::isxdigit(static_cast<unsigned char>(c)) && i >= 2) {
                    // inside a hex literal
                    size_t j = i;
                    while (j > 0 && std::isxdigit(
                               static_cast<unsigned char>(text[j - 1]))) {
                        j--;
                    }
                    if (j >= 2 && (text[j - 1] == 'x' || text[j - 1] == 'X')
                        && text[j - 2] == '0') {
                        continue;
                    }
                }
                return false;
            }
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() && std::isspace(
                   static_cast<unsigned char>(text_[pos_]))) {
            pos_++;
        }
    }

    int32_t
    parseSum()
    {
        int32_t v = parseTerm();
        while (true) {
            skipWs();
            if (pos_ < text_.size() && (text_[pos_] == '+' ||
                                        text_[pos_] == '-')) {
                char op = text_[pos_++];
                int32_t t = parseTerm();
                v = op == '+' ? v + t : v - t;
            } else {
                break;
            }
        }
        return v;
    }

    int32_t
    parseTerm()
    {
        skipWs();
        if (pos_ >= text_.size())
            bespoke_fatal("line ", line_, ": truncated expression '",
                          text_, "'");
        if (text_[pos_] == '-') {
            pos_++;
            return -parseTerm();
        }
        char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t end;
            int32_t v;
            std::string rest = text_.substr(pos_);
            if (rest.size() > 2 && rest[0] == '0' &&
                (rest[1] == 'x' || rest[1] == 'X')) {
                v = static_cast<int32_t>(std::stoul(rest, &end, 16));
            } else {
                v = static_cast<int32_t>(std::stol(rest, &end, 10));
            }
            pos_ += end;
            return v;
        }
        if (isIdentChar(c)) {
            size_t start = pos_;
            while (pos_ < text_.size() && isIdentChar(text_[pos_]))
                pos_++;
            std::string name = text_.substr(start, pos_ - start);
            auto it = symbols_.find(name);
            if (it == symbols_.end()) {
                if (strict_) {
                    bespoke_fatal("line ", line_, ": undefined symbol '",
                                  name, "'");
                }
                ok_ = false;
                return 0;
            }
            return it->second;
        }
        bespoke_fatal("line ", line_, ": bad expression '", text_, "'");
    }

    const std::map<std::string, uint16_t> &symbols_;
    bool strict_;
    std::string text_;
    size_t pos_ = 0;
    int line_ = 0;
    bool ok_ = true;
};

/** Parsed operand before encoding. */
struct Operand
{
    enum class Kind
    {
        Reg,
        Imm,
        Abs,
        Indexed,
        Indirect,
        IndirectInc,
    };
    Kind kind = Kind::Reg;
    int reg = 0;
    std::string expr;  ///< for Imm/Abs/Indexed
};

int
parseRegName(const std::string &text)
{
    std::string t = lower(trim(text));
    if (t == "pc")
        return kRegPC;
    if (t == "sp")
        return kRegSP;
    if (t == "sr")
        return kRegSR;
    if (t == "cg")
        return kRegCG;
    if (t.size() >= 2 && t[0] == 'r') {
        bool digits = true;
        for (size_t i = 1; i < t.size(); i++) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                digits = false;
        }
        if (digits) {
            int n = std::stoi(t.substr(1));
            if (n >= 0 && n <= 15)
                return n;
        }
    }
    return -1;
}

Operand
parseOperand(const std::string &text, int line)
{
    Operand op;
    std::string t = trim(text);
    bespoke_assert(!t.empty(), "line ", line, ": empty operand");

    int reg = parseRegName(t);
    if (reg >= 0) {
        op.kind = Operand::Kind::Reg;
        op.reg = reg;
        return op;
    }
    if (t[0] == '#') {
        op.kind = Operand::Kind::Imm;
        op.expr = trim(t.substr(1));
        return op;
    }
    if (t[0] == '&') {
        op.kind = Operand::Kind::Abs;
        op.expr = trim(t.substr(1));
        return op;
    }
    if (t[0] == '@') {
        std::string r = trim(t.substr(1));
        op.kind = Operand::Kind::Indirect;
        if (!r.empty() && r.back() == '+') {
            op.kind = Operand::Kind::IndirectInc;
            r = trim(r.substr(0, r.size() - 1));
        }
        op.reg = parseRegName(r);
        if (op.reg < 0)
            bespoke_fatal("line ", line, ": bad register in '", t, "'");
        return op;
    }
    // X(Rn) indexed?
    size_t open = t.rfind('(');
    if (open != std::string::npos && t.back() == ')') {
        op.kind = Operand::Kind::Indexed;
        op.expr = trim(t.substr(0, open));
        op.reg = parseRegName(t.substr(open + 1,
                                       t.size() - open - 2));
        if (op.reg < 0)
            bespoke_fatal("line ", line, ": bad register in '", t, "'");
        if (op.expr.empty())
            bespoke_fatal("line ", line, ": missing index in '", t, "'");
        return op;
    }
    // Bare expression: absolute addressing.
    op.kind = Operand::Kind::Abs;
    op.expr = t;
    return op;
}

/** Constant-generator encoding for an immediate literal, if any. */
bool
constGenFor(int32_t value, int &reg, AddrMode &mode)
{
    uint16_t v = static_cast<uint16_t>(value);
    switch (v) {
      case 0:
        reg = kRegCG; mode = AddrMode::Register; return true;
      case 1:
        reg = kRegCG; mode = AddrMode::Indexed; return true;
      case 2:
        reg = kRegCG; mode = AddrMode::Indirect; return true;
      case 0xffff:
        reg = kRegCG; mode = AddrMode::IndirectInc; return true;
      case 4:
        reg = kRegSR; mode = AddrMode::Indirect; return true;
      case 8:
        reg = kRegSR; mode = AddrMode::IndirectInc; return true;
      default:
        return false;
    }
}

/** Source-operand encoding decision (must be identical in both passes). */
struct SrcEnc
{
    int reg;
    AddrMode mode;
    bool hasExt;
    std::string extExpr;  ///< expression for the extension word
};

SrcEnc
encodeSrc(const Operand &op, int line)
{
    SrcEnc e{0, AddrMode::Register, false, ""};
    switch (op.kind) {
      case Operand::Kind::Reg:
        e.reg = op.reg;
        e.mode = AddrMode::Register;
        return e;
      case Operand::Kind::Indirect:
        e.reg = op.reg;
        e.mode = AddrMode::Indirect;
        return e;
      case Operand::Kind::IndirectInc:
        e.reg = op.reg;
        e.mode = AddrMode::IndirectInc;
        return e;
      case Operand::Kind::Imm: {
        // Constant generator only for pure literals, so that
        // instruction sizes agree between passes.
        if (ExprEval::isLiteral(op.expr)) {
            std::map<std::string, uint16_t> empty;
            ExprEval ev(empty, true);
            int32_t v;
            ev.eval(op.expr, line, v);
            int reg;
            AddrMode mode;
            if (constGenFor(v, reg, mode)) {
                e.reg = reg;
                e.mode = mode;
                return e;
            }
        }
        e.reg = kRegPC;
        e.mode = AddrMode::IndirectInc;
        e.hasExt = true;
        e.extExpr = op.expr;
        return e;
      }
      case Operand::Kind::Abs:
        e.reg = kRegSR;
        e.mode = AddrMode::Indexed;
        e.hasExt = true;
        e.extExpr = op.expr;
        return e;
      case Operand::Kind::Indexed:
        e.reg = op.reg;
        e.mode = AddrMode::Indexed;
        e.hasExt = true;
        e.extExpr = op.expr;
        return e;
    }
    bespoke_fatal("line ", line, ": bad source operand");
}

struct DstEnc
{
    int reg;
    AddrMode mode;
    bool hasExt;
    std::string extExpr;
};

DstEnc
encodeDst(const Operand &op, int line)
{
    DstEnc e{0, AddrMode::Register, false, ""};
    switch (op.kind) {
      case Operand::Kind::Reg:
        e.reg = op.reg;
        e.mode = AddrMode::Register;
        return e;
      case Operand::Kind::Abs:
        e.reg = kRegSR;
        e.mode = AddrMode::Indexed;
        e.hasExt = true;
        e.extExpr = op.expr;
        return e;
      case Operand::Kind::Indexed:
        e.reg = op.reg;
        e.mode = AddrMode::Indexed;
        e.hasExt = true;
        e.extExpr = op.expr;
        return e;
      default:
        bespoke_fatal("line ", line,
                      ": destination must be reg, &abs or X(Rn)");
    }
}

/** A pseudo-instruction rewrite: mnemonic + operand strings. */
struct Rewrite
{
    std::string mnemonic;
    std::vector<std::string> operands;
};

/**
 * Expand pseudo-instructions to core ones. byte_suffix carries ".b"
 * through for pseudos that support it.
 */
bool
expandPseudo(const std::string &mnemonic,
             const std::vector<std::string> &ops, Rewrite &out, int line)
{
    std::string base = mnemonic;
    std::string suffix;
    if (base.size() > 2 && base.substr(base.size() - 2) == ".b") {
        suffix = ".b";
        base = base.substr(0, base.size() - 2);
    }
    auto need = [&](size_t n) {
        if (ops.size() != n) {
            bespoke_fatal("line ", line, ": '", mnemonic, "' takes ", n,
                          " operand(s)");
        }
    };
    if (base == "nop") {
        need(0);
        out = {"mov", {"r3", "r3"}};
        return true;
    }
    if (base == "ret") {
        need(0);
        out = {"mov", {"@sp+", "pc"}};
        return true;
    }
    if (base == "pop") {
        need(1);
        out = {"mov" + suffix, {"@sp+", ops[0]}};
        return true;
    }
    if (base == "br") {
        need(1);
        out = {"mov", {ops[0], "pc"}};
        return true;
    }
    if (base == "clr") {
        need(1);
        out = {"mov" + suffix, {"#0", ops[0]}};
        return true;
    }
    if (base == "inc") {
        need(1);
        out = {"add" + suffix, {"#1", ops[0]}};
        return true;
    }
    if (base == "incd") {
        need(1);
        out = {"add" + suffix, {"#2", ops[0]}};
        return true;
    }
    if (base == "dec") {
        need(1);
        out = {"sub" + suffix, {"#1", ops[0]}};
        return true;
    }
    if (base == "decd") {
        need(1);
        out = {"sub" + suffix, {"#2", ops[0]}};
        return true;
    }
    if (base == "inv") {
        need(1);
        out = {"xor" + suffix, {"#-1", ops[0]}};
        return true;
    }
    if (base == "rla") {
        need(1);
        out = {"add" + suffix, {ops[0], ops[0]}};
        return true;
    }
    if (base == "rlc") {
        need(1);
        out = {"addc" + suffix, {ops[0], ops[0]}};
        return true;
    }
    if (base == "adc") {
        need(1);
        out = {"addc" + suffix, {"#0", ops[0]}};
        return true;
    }
    if (base == "sbc") {
        need(1);
        out = {"subc" + suffix, {"#0", ops[0]}};
        return true;
    }
    if (base == "tst") {
        need(1);
        out = {"cmp" + suffix, {"#0", ops[0]}};
        return true;
    }
    if (base == "clrc") {
        need(0);
        out = {"bic", {"#1", "sr"}};
        return true;
    }
    if (base == "setc") {
        need(0);
        out = {"bis", {"#1", "sr"}};
        return true;
    }
    if (base == "clrz") {
        need(0);
        out = {"bic", {"#2", "sr"}};
        return true;
    }
    if (base == "setz") {
        need(0);
        out = {"bis", {"#2", "sr"}};
        return true;
    }
    if (base == "clrn") {
        need(0);
        out = {"bic", {"#4", "sr"}};
        return true;
    }
    if (base == "setn") {
        need(0);
        out = {"bis", {"#4", "sr"}};
        return true;
    }
    if (base == "dint") {
        need(0);
        out = {"bic", {"#8", "sr"}};
        return true;
    }
    if (base == "eint") {
        need(0);
        out = {"bis", {"#8", "sr"}};
        return true;
    }
    return false;
}

/** Assembler implementation (shared by both passes). */
class AsmPass
{
  public:
    AsmPass(AsmProgram &prog, std::map<std::string, uint16_t> &symbols,
            bool final_pass, const std::string &name)
        : prog_(prog), symbols_(symbols), finalPass_(final_pass),
          name_(name)
    {}

    void
    run(const std::string &source)
    {
        std::istringstream in(source);
        std::string raw;
        int line_no = 0;
        pc_ = kRomBase;
        while (std::getline(in, raw)) {
            line_no++;
            processLine(raw, line_no);
        }
    }

  private:
    void
    emitWord(uint16_t value, int line, bool is_instr_head = false,
             bool is_cond_branch = false)
    {
        if (pc_ < kRomBase || pc_ > 0xfffe) {
            bespoke_fatal(name_, " line ", line,
                          ": emission outside ROM at 0x", std::hex, pc_);
        }
        if (finalPass_) {
            prog_.rom[pc_ - kRomBase] = static_cast<uint8_t>(value & 0xff);
            prog_.rom[pc_ - kRomBase + 1] =
                static_cast<uint8_t>(value >> 8);
            if (is_instr_head) {
                prog_.addrToLine[pc_] = line;
                if (is_cond_branch)
                    prog_.condBranchAddrs.push_back(pc_);
            }
        }
        pc_ = static_cast<uint16_t>(pc_ + 2);
    }

    void
    defineSymbol(const std::string &name, uint16_t value, int line)
    {
        if (!finalPass_) {
            if (symbols_.count(name)) {
                bespoke_fatal(name_, " line ", line,
                              ": duplicate symbol '", name, "'");
            }
            symbols_[name] = value;
        }
    }

    int32_t
    evalOrZero(const std::string &expr, int line)
    {
        ExprEval ev(symbols_, finalPass_);
        int32_t v = 0;
        ev.eval(expr, line, v);
        return v;
    }

    void
    processLine(const std::string &raw, int line)
    {
        std::string text = raw;
        size_t sc = text.find(';');
        if (sc != std::string::npos)
            text = text.substr(0, sc);
        text = trim(text);
        if (text.empty())
            return;

        // Labels (possibly several) at line start.
        while (true) {
            size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string head = trim(text.substr(0, colon));
            bool ident = !head.empty();
            for (char c : head) {
                if (!isIdentChar(c))
                    ident = false;
            }
            if (!ident)
                break;
            defineSymbol(head, pc_, line);
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            return;

        // Split "mnemonic rest".
        size_t sp = text.find_first_of(" \t");
        std::string mnemonic = lower(sp == std::string::npos
                                         ? text
                                         : text.substr(0, sp));
        std::string rest = sp == std::string::npos
                               ? ""
                               : trim(text.substr(sp + 1));

        if (mnemonic[0] == '.') {
            processDirective(mnemonic, rest, line);
            return;
        }

        std::vector<std::string> ops = splitOperands(rest);

        Rewrite rw;
        if (expandPseudo(mnemonic, ops, rw, line)) {
            mnemonic = rw.mnemonic;
            ops = rw.operands;
        }

        auto mn = parseMnemonic(mnemonic);
        if (!mn) {
            bespoke_fatal(name_, " line ", line, ": unknown mnemonic '",
                          mnemonic, "'");
        }
        if (!finalPass_)
            prog_.codeLines++;

        switch (mn->format) {
          case Format::DoubleOp:
            assembleDoubleOp(*mn, ops, line);
            break;
          case Format::SingleOp:
            assembleSingleOp(*mn, ops, line);
            break;
          case Format::Jump:
            assembleJump(*mn, ops, line);
            break;
          default:
            bespoke_fatal(name_, " line ", line, ": bad format");
        }
    }

    void
    processDirective(const std::string &dir, const std::string &rest,
                     int line)
    {
        if (dir == ".org") {
            pc_ = static_cast<uint16_t>(evalOrZero(rest, line));
            return;
        }
        if (dir == ".word") {
            for (const std::string &e : splitOperands(rest)) {
                emitWord(static_cast<uint16_t>(evalOrZero(e, line)), line);
            }
            return;
        }
        if (dir == ".space") {
            int32_t n = evalOrZero(rest, line);
            bespoke_assert(n >= 0 && n % 2 == 0,
                           "line ", line, ": .space must be even");
            for (int i = 0; i < n / 2; i++)
                emitWord(0, line);
            return;
        }
        if (dir == ".equ") {
            std::vector<std::string> parts = splitOperands(rest);
            if (parts.size() != 2) {
                bespoke_fatal(name_, " line ", line,
                              ": .equ NAME, expr");
            }
            defineSymbol(parts[0],
                         static_cast<uint16_t>(evalOrZero(parts[1], line)),
                         line);
            return;
        }
        bespoke_fatal(name_, " line ", line, ": unknown directive '", dir,
                      "'");
    }

    void
    assembleDoubleOp(const Mnemonic &mn, const std::vector<std::string> &ops,
                     int line)
    {
        if (ops.size() != 2) {
            bespoke_fatal(name_, " line ", line,
                          ": two operands required");
        }
        Operand src = parseOperand(ops[0], line);
        Operand dst = parseOperand(ops[1], line);
        SrcEnc se = encodeSrc(src, line);
        DstEnc de = encodeDst(dst, line);
        emitWord(encodeDoubleOp(mn.op1, se.reg, se.mode, de.reg, de.mode,
                                mn.byteMode),
                 line, true);
        if (se.hasExt)
            emitWord(static_cast<uint16_t>(evalOrZero(se.extExpr, line)),
                     line);
        if (de.hasExt)
            emitWord(static_cast<uint16_t>(evalOrZero(de.extExpr, line)),
                     line);
    }

    void
    assembleSingleOp(const Mnemonic &mn, const std::vector<std::string> &ops,
                     int line)
    {
        if (mn.op2 == Op2::RETI) {
            if (!ops.empty())
                bespoke_fatal(name_, " line ", line, ": reti is nullary");
            emitWord(encodeSingleOp(Op2::RETI, 0, AddrMode::Register,
                                    false),
                     line, true);
            return;
        }
        if (ops.size() != 1) {
            bespoke_fatal(name_, " line ", line,
                          ": one operand required");
        }
        Operand op = parseOperand(ops[0], line);
        SrcEnc se = encodeSrc(op, line);
        emitWord(encodeSingleOp(mn.op2, se.reg, se.mode, mn.byteMode),
                 line, true);
        if (se.hasExt)
            emitWord(static_cast<uint16_t>(evalOrZero(se.extExpr, line)),
                     line);
    }

    void
    assembleJump(const Mnemonic &mn, const std::vector<std::string> &ops,
                 int line)
    {
        if (ops.size() != 1) {
            bespoke_fatal(name_, " line ", line,
                          ": jump target required");
        }
        int32_t target = evalOrZero(ops[0], line);
        int16_t word_off = 0;
        if (finalPass_) {
            int32_t delta = target - (pc_ + 2);
            if (delta % 2 != 0) {
                bespoke_fatal(name_, " line ", line,
                              ": odd jump target");
            }
            delta /= 2;
            if (delta < -512 || delta > 511) {
                bespoke_fatal(name_, " line ", line,
                              ": jump out of range (", delta, " words)");
            }
            word_off = static_cast<int16_t>(delta);
        }
        emitWord(encodeJump(mn.cond, word_off), line, true,
                 mn.cond != JumpCond::JMP);
    }

    AsmProgram &prog_;
    std::map<std::string, uint16_t> &symbols_;
    bool finalPass_;
    std::string name_;
    uint16_t pc_ = kRomBase;
};

} // namespace

uint16_t
AsmProgram::romWord(uint16_t byte_addr) const
{
    bespoke_assert(byte_addr >= kRomBase);
    size_t off = byte_addr - kRomBase;
    bespoke_assert(off + 1 < rom.size());
    return static_cast<uint16_t>(rom[off] | (rom[off + 1] << 8));
}

AsmProgram
assemble(const std::string &source, const std::string &name)
{
    AsmProgram prog;
    std::map<std::string, uint16_t> symbols;
    AsmPass pass1(prog, symbols, false, name);
    pass1.run(source);
    AsmPass pass2(prog, symbols, true, name);
    pass2.run(source);
    prog.symbols = symbols;
    return prog;
}

} // namespace bespoke
