#include "src/isa/isa.hh"

#include <map>

#include "src/util/logging.hh"

namespace bespoke
{

bool
Instr::usesConstGen() const
{
    if (format != Format::DoubleOp && format != Format::SingleOp)
        return false;
    if (srcReg == kRegCG)
        return true;
    if (srcReg == kRegSR &&
        (srcMode == AddrMode::Indirect || srcMode == AddrMode::IndirectInc))
        return true;
    return false;
}

uint16_t
Instr::constGenValue() const
{
    if (srcReg == kRegSR)
        return srcMode == AddrMode::Indirect ? 4 : 8;
    switch (srcMode) {
      case AddrMode::Register:
        return 0;
      case AddrMode::Indexed:
        return 1;
      case AddrMode::Indirect:
        return 2;
      default:
        return 0xffff;
    }
}

bool
Instr::srcNeedsExt() const
{
    if (format != Format::DoubleOp && format != Format::SingleOp)
        return false;
    if (usesConstGen())
        return false;
    if (srcMode == AddrMode::Indexed)
        return true;
    // @PC+ is #imm, which consumes the next word.
    if (srcMode == AddrMode::IndirectInc && srcReg == kRegPC)
        return true;
    return false;
}

bool
Instr::dstNeedsExt() const
{
    return format == Format::DoubleOp && dstMode == AddrMode::Indexed;
}

Instr
decode(uint16_t word)
{
    Instr ins;
    ins.raw = word;
    uint16_t top4 = word >> 12;
    if (top4 >= 0x4) {
        if (top4 == 0xa) {
            ins.format = Format::Illegal;  // DADD unimplemented
            return ins;
        }
        ins.format = Format::DoubleOp;
        ins.op1 = static_cast<Op1>(top4);
        ins.srcReg = (word >> 8) & 0xf;
        ins.dstMode = (word & (1u << 7)) ? AddrMode::Indexed
                                         : AddrMode::Register;
        ins.byteMode = (word & (1u << 6)) != 0;
        ins.srcMode = static_cast<AddrMode>((word >> 4) & 0x3);
        ins.dstReg = word & 0xf;
        return ins;
    }
    if (top4 == 0x2 || top4 == 0x3) {
        ins.format = Format::Jump;
        ins.cond = static_cast<JumpCond>((word >> 10) & 0x7);
        int16_t off = static_cast<int16_t>(word & 0x3ff);
        if (off & 0x200)
            off -= 0x400;
        ins.offset = off;
        return ins;
    }
    if ((word >> 10) == 0x4) {  // 000100 prefix: format II
        int op = (word >> 7) & 0x7;
        if (op == 7) {
            ins.format = Format::Illegal;
            return ins;
        }
        ins.format = Format::SingleOp;
        ins.op2 = static_cast<Op2>(op);
        ins.byteMode = (word & (1u << 6)) != 0;
        ins.srcMode = static_cast<AddrMode>((word >> 4) & 0x3);
        ins.srcReg = word & 0xf;
        // Format II reads and writes through the "source" operand.
        ins.dstReg = ins.srcReg;
        return ins;
    }
    ins.format = Format::Illegal;
    return ins;
}

uint16_t
encodeDoubleOp(Op1 op, int src_reg, AddrMode src_mode, int dst_reg,
               AddrMode dst_mode, bool byte_mode)
{
    bespoke_assert(dst_mode == AddrMode::Register ||
                   dst_mode == AddrMode::Indexed);
    uint16_t w = 0;
    w |= static_cast<uint16_t>(op) << 12;
    w |= static_cast<uint16_t>(src_reg & 0xf) << 8;
    w |= (dst_mode == AddrMode::Indexed ? 1u : 0u) << 7;
    w |= (byte_mode ? 1u : 0u) << 6;
    w |= static_cast<uint16_t>(src_mode) << 4;
    w |= static_cast<uint16_t>(dst_reg & 0xf);
    return w;
}

uint16_t
encodeSingleOp(Op2 op, int reg, AddrMode mode, bool byte_mode)
{
    uint16_t w = 0x1000;
    w |= static_cast<uint16_t>(op) << 7;
    w |= (byte_mode ? 1u : 0u) << 6;
    w |= static_cast<uint16_t>(mode) << 4;
    w |= static_cast<uint16_t>(reg & 0xf);
    return w;
}

uint16_t
encodeJump(JumpCond cond, int16_t word_offset)
{
    bespoke_assert(word_offset >= -512 && word_offset <= 511,
                   "jump offset out of range: ", word_offset);
    uint16_t w = 0x2000;
    w |= static_cast<uint16_t>(cond) << 10;
    w |= static_cast<uint16_t>(word_offset) & 0x3ff;
    return w;
}

std::optional<Mnemonic>
parseMnemonic(const std::string &text)
{
    static const std::map<std::string, Mnemonic> table = {
        {"mov", {Format::DoubleOp, Op1::MOV, Op2::RRC, JumpCond::JMP, false}},
        {"add", {Format::DoubleOp, Op1::ADD, Op2::RRC, JumpCond::JMP, false}},
        {"addc", {Format::DoubleOp, Op1::ADDC, Op2::RRC, JumpCond::JMP,
                  false}},
        {"subc", {Format::DoubleOp, Op1::SUBC, Op2::RRC, JumpCond::JMP,
                  false}},
        {"sub", {Format::DoubleOp, Op1::SUB, Op2::RRC, JumpCond::JMP, false}},
        {"cmp", {Format::DoubleOp, Op1::CMP, Op2::RRC, JumpCond::JMP, false}},
        {"bit", {Format::DoubleOp, Op1::BIT, Op2::RRC, JumpCond::JMP, false}},
        {"bic", {Format::DoubleOp, Op1::BIC, Op2::RRC, JumpCond::JMP, false}},
        {"bis", {Format::DoubleOp, Op1::BIS, Op2::RRC, JumpCond::JMP, false}},
        {"xor", {Format::DoubleOp, Op1::XOR, Op2::RRC, JumpCond::JMP, false}},
        {"and", {Format::DoubleOp, Op1::AND, Op2::RRC, JumpCond::JMP, false}},
        {"rrc", {Format::SingleOp, Op1::MOV, Op2::RRC, JumpCond::JMP, false}},
        {"swpb", {Format::SingleOp, Op1::MOV, Op2::SWPB, JumpCond::JMP,
                  false}},
        {"rra", {Format::SingleOp, Op1::MOV, Op2::RRA, JumpCond::JMP, false}},
        {"sxt", {Format::SingleOp, Op1::MOV, Op2::SXT, JumpCond::JMP, false}},
        {"push", {Format::SingleOp, Op1::MOV, Op2::PUSH, JumpCond::JMP,
                  false}},
        {"call", {Format::SingleOp, Op1::MOV, Op2::CALL, JumpCond::JMP,
                  false}},
        {"reti", {Format::SingleOp, Op1::MOV, Op2::RETI, JumpCond::JMP,
                  false}},
        {"jne", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JNE, false}},
        {"jnz", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JNE, false}},
        {"jeq", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JEQ, false}},
        {"jz", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JEQ, false}},
        {"jnc", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JNC, false}},
        {"jlo", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JNC, false}},
        {"jc", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JC, false}},
        {"jhs", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JC, false}},
        {"jn", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JN, false}},
        {"jge", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JGE, false}},
        {"jl", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JL, false}},
        {"jmp", {Format::Jump, Op1::MOV, Op2::RRC, JumpCond::JMP, false}},
    };

    std::string base = text;
    bool byte_mode = false;
    if (base.size() > 2 && base.substr(base.size() - 2) == ".b") {
        byte_mode = true;
        base = base.substr(0, base.size() - 2);
    } else if (base.size() > 2 && base.substr(base.size() - 2) == ".w") {
        base = base.substr(0, base.size() - 2);
    }

    auto it = table.find(base);
    if (it == table.end())
        return std::nullopt;
    Mnemonic m = it->second;
    if (byte_mode) {
        if (m.format == Format::Jump)
            return std::nullopt;
        m.byteMode = true;
    }
    return m;
}

namespace
{

const char *
op1Name(Op1 op)
{
    switch (op) {
      case Op1::MOV: return "mov";
      case Op1::ADD: return "add";
      case Op1::ADDC: return "addc";
      case Op1::SUBC: return "subc";
      case Op1::SUB: return "sub";
      case Op1::CMP: return "cmp";
      case Op1::DADD: return "dadd";
      case Op1::BIT: return "bit";
      case Op1::BIC: return "bic";
      case Op1::BIS: return "bis";
      case Op1::XOR: return "xor";
      case Op1::AND: return "and";
    }
    return "?";
}

const char *
op2Name(Op2 op)
{
    switch (op) {
      case Op2::RRC: return "rrc";
      case Op2::SWPB: return "swpb";
      case Op2::RRA: return "rra";
      case Op2::SXT: return "sxt";
      case Op2::PUSH: return "push";
      case Op2::CALL: return "call";
      case Op2::RETI: return "reti";
    }
    return "?";
}

const char *
jumpName(JumpCond c)
{
    switch (c) {
      case JumpCond::JNE: return "jne";
      case JumpCond::JEQ: return "jeq";
      case JumpCond::JNC: return "jnc";
      case JumpCond::JC: return "jc";
      case JumpCond::JN: return "jn";
      case JumpCond::JGE: return "jge";
      case JumpCond::JL: return "jl";
      case JumpCond::JMP: return "jmp";
    }
    return "?";
}

std::string
modeString(int reg, AddrMode mode)
{
    std::string r = "r" + std::to_string(reg);
    switch (mode) {
      case AddrMode::Register:
        return r;
      case AddrMode::Indexed:
        return "x(" + r + ")";
      case AddrMode::Indirect:
        return "@" + r;
      case AddrMode::IndirectInc:
        return "@" + r + "+";
    }
    return "?";
}

} // namespace

std::string
Instr::toString() const
{
    switch (format) {
      case Format::DoubleOp:
        return std::string(op1Name(op1)) + (byteMode ? ".b " : " ") +
               modeString(srcReg, srcMode) + ", " +
               modeString(dstReg, dstMode);
      case Format::SingleOp:
        return std::string(op2Name(op2)) + (byteMode ? ".b " : " ") +
               modeString(srcReg, srcMode);
      case Format::Jump:
        return std::string(jumpName(cond)) + " " +
               std::to_string(static_cast<int>(offset));
      default:
        return "illegal";
    }
}

} // namespace bespoke
