/**
 * @file
 * Two-pass assembler for the BSP430 ISA.
 *
 * Syntax (MSP430 style):
 *
 *     ; comment
 *     .equ  NAME, expr          ; define a constant
 *     .org  0xF000              ; set location counter (ROM region only)
 *     label:
 *         mov   #0x0280, sp     ; immediates use the constant generator
 *         mov.b &0x0000, r5     ; absolute addressing
 *         add   2(r4), r5       ; indexed
 *         mov   @r4+, r6        ; post-increment
 *         jnz   label
 *     .word expr [, expr ...]
 *     .space N
 *
 * Pseudo-instructions (expanded to core encodings): nop, ret, pop, br,
 * clr, inc, incd, dec, decd, inv, rla, rlc, adc, sbc, tst, clrc, setc,
 * clrz, setz, clrn, dint, eint.
 *
 * The assembler records, per emitted instruction, its source line and
 * whether it is a conditional branch; the verification harness (paper
 * Table 3) uses these for line/branch coverage metrics.
 */

#ifndef BESPOKE_ISA_ASSEMBLER_HH
#define BESPOKE_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/isa.hh"

namespace bespoke
{

/** One assembled program: a ROM image plus metadata. */
struct AsmProgram
{
    /** ROM contents, kRomSize bytes starting at kRomBase. */
    std::vector<uint8_t> rom = std::vector<uint8_t>(kRomSize, 0xff);

    /** Label/equ symbol table. */
    std::map<std::string, uint16_t> symbols;

    /** Byte address of each emitted instruction -> 1-based source line. */
    std::map<uint16_t, int> addrToLine;

    /** Addresses of conditional branches (format III, cond != JMP). */
    std::vector<uint16_t> condBranchAddrs;

    /** Number of source lines that emitted code (for coverage %). */
    int codeLines = 0;

    /** Read a 16-bit little-endian word from the ROM image. */
    uint16_t romWord(uint16_t byte_addr) const;

    /** Reset-vector entry point. */
    uint16_t entry() const { return romWord(kVecReset); }
};

/**
 * Assemble BSP430 source. Errors are fatal (this is an offline tool
 * flow; a bad benchmark source is a build bug). The @p name is used in
 * diagnostics only.
 */
AsmProgram assemble(const std::string &source,
                    const std::string &name = "<asm>");

} // namespace bespoke

#endif // BESPOKE_ISA_ASSEMBLER_HH
