/**
 * @file
 * BSP430 instruction-set definitions.
 *
 * BSP430 is the MSP430 core instruction set (minus DADD, which traps as
 * illegal): 12 format-I double-operand instructions, 7 format-II single
 * operand instructions, 8 conditional jumps, full addressing modes, the
 * R2/R3 constant generator, and byte/word operation sizes. This header
 * owns encodings and decode; execution semantics live in src/iss (golden
 * model) and src/cpu (gate level).
 */

#ifndef BESPOKE_ISA_ISA_HH
#define BESPOKE_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace bespoke
{

/** Register aliases. */
constexpr int kRegPC = 0;
constexpr int kRegSP = 1;
constexpr int kRegSR = 2;  ///< status register / constant generator 1
constexpr int kRegCG = 3;  ///< constant generator 2

/** Status-register flag bit positions (MSP430 layout). */
constexpr uint16_t kFlagC = 1u << 0;
constexpr uint16_t kFlagZ = 1u << 1;
constexpr uint16_t kFlagN = 1u << 2;
constexpr uint16_t kFlagGIE = 1u << 3;
constexpr uint16_t kFlagV = 1u << 8;

/** Format-I (double operand) opcodes, value = bits [15:12]. */
enum class Op1 : uint8_t
{
    MOV = 0x4,
    ADD = 0x5,
    ADDC = 0x6,
    SUBC = 0x7,
    SUB = 0x8,
    CMP = 0x9,
    DADD = 0xa,  ///< unimplemented; traps
    BIT = 0xb,
    BIC = 0xc,
    BIS = 0xd,
    XOR = 0xe,
    AND = 0xf,
};

/** Format-II (single operand) opcodes, value = bits [9:7]. */
enum class Op2 : uint8_t
{
    RRC = 0,
    SWPB = 1,
    RRA = 2,
    SXT = 3,
    PUSH = 4,
    CALL = 5,
    RETI = 6,
};

/** Jump conditions, value = bits [12:10]. */
enum class JumpCond : uint8_t
{
    JNE = 0,  ///< Z == 0
    JEQ = 1,  ///< Z == 1
    JNC = 2,  ///< C == 0
    JC = 3,   ///< C == 1
    JN = 4,   ///< N == 1
    JGE = 5,  ///< N ^ V == 0
    JL = 6,   ///< N ^ V == 1
    JMP = 7,  ///< always
};

/** Source addressing mode (As field). */
enum class AddrMode : uint8_t
{
    Register = 0,      ///< Rn
    Indexed = 1,       ///< X(Rn); &abs with R2; symbolic with R0
    Indirect = 2,      ///< @Rn
    IndirectInc = 3,   ///< @Rn+; #imm with R0
};

/** Instruction class. */
enum class Format : uint8_t
{
    DoubleOp,
    SingleOp,
    Jump,
    Illegal,
};

/** Decoded instruction. */
struct Instr
{
    Format format = Format::Illegal;
    uint16_t raw = 0;

    // Format I / II
    Op1 op1 = Op1::MOV;
    Op2 op2 = Op2::RRC;
    bool byteMode = false;
    int srcReg = 0;
    AddrMode srcMode = AddrMode::Register;
    int dstReg = 0;
    AddrMode dstMode = AddrMode::Register;  ///< Register or Indexed only

    // Format III
    JumpCond cond = JumpCond::JMP;
    int16_t offset = 0;  ///< word offset, sign-extended

    /** Does the source addressing use the constant generator? */
    bool usesConstGen() const;
    /** Constant produced by the constant generator (valid when above). */
    uint16_t constGenValue() const;
    /** Does the source consume an extension word? */
    bool srcNeedsExt() const;
    /** Does the destination consume an extension word? */
    bool dstNeedsExt() const;

    std::string toString() const;
};

/** Decode one instruction word (extension words fetched separately). */
Instr decode(uint16_t word);

/** @name Encoding helpers (used by the assembler and tests) */
/// @{
uint16_t encodeDoubleOp(Op1 op, int src_reg, AddrMode src_mode, int dst_reg,
                        AddrMode dst_mode, bool byte_mode);
uint16_t encodeSingleOp(Op2 op, int reg, AddrMode mode, bool byte_mode);
uint16_t encodeJump(JumpCond cond, int16_t word_offset);
/// @}

/** Parse an opcode mnemonic ("mov", "add.b", "jnz", ...). */
struct Mnemonic
{
    Format format;
    Op1 op1;
    Op2 op2;
    JumpCond cond;
    bool byteMode;
};
std::optional<Mnemonic> parseMnemonic(const std::string &text);

/** @name Memory map (byte addresses) */
/// @{
constexpr uint16_t kAddrP1IN = 0x0000;    ///< GPIO input port (read only)
constexpr uint16_t kAddrP1OUT = 0x0002;   ///< GPIO output port
constexpr uint16_t kAddrIE = 0x0004;      ///< interrupt enable
constexpr uint16_t kAddrIFG = 0x0006;     ///< interrupt flags
constexpr uint16_t kAddrWDTCTL = 0x0010;  ///< watchdog control/counter ctl
constexpr uint16_t kAddrCLKCTL = 0x0020;  ///< clock module control
constexpr uint16_t kAddrDBGCTL = 0x0030;  ///< debug unit control
constexpr uint16_t kAddrDBGADDR = 0x0032; ///< debug unit address register
constexpr uint16_t kAddrDBGDATA = 0x0034; ///< debug unit data register
constexpr uint16_t kAddrTACTL = 0x0040;   ///< timer control (ext. core)
constexpr uint16_t kAddrTACNT = 0x0042;   ///< timer counter (read only)
constexpr uint16_t kAddrTACCR = 0x0044;   ///< timer compare register
constexpr uint16_t kAddrUCTL = 0x0050;    ///< UART control/status
constexpr uint16_t kAddrUTXBUF = 0x0052;  ///< UART transmit buffer
constexpr uint16_t kAddrMPY = 0x0130;     ///< multiplier op1, unsigned
constexpr uint16_t kAddrMPYS = 0x0132;    ///< multiplier op1, signed
constexpr uint16_t kAddrOP2 = 0x0134;     ///< multiplier op2 (triggers)
constexpr uint16_t kAddrRESLO = 0x0136;   ///< product low
constexpr uint16_t kAddrRESHI = 0x0138;   ///< product high

constexpr uint16_t kPeriphEnd = 0x0200;   ///< peripherals live below this

constexpr uint16_t kRamBase = 0x0200;
constexpr uint16_t kRamSize = 0x0800;     ///< 2 KiB
constexpr uint16_t kRomBase = 0xf000;
constexpr uint16_t kRomSize = 0x1000;     ///< 4 KiB
constexpr uint16_t kVecIRQ0 = 0xfff8;     ///< external (GPIO) interrupt
constexpr uint16_t kVecIRQ1 = 0xfffa;     ///< watchdog interrupt
constexpr uint16_t kVecNMI = 0xfffc;      ///< unused, reserved
constexpr uint16_t kVecReset = 0xfffe;
/// @}

/** True if a byte address falls in the peripheral/SFR region. */
inline bool
isPeriphAddr(uint16_t addr)
{
    return addr < kPeriphEnd;
}

inline bool
isRamAddr(uint16_t addr)
{
    return addr >= kRamBase && addr < kRamBase + kRamSize;
}

inline bool
isRomAddr(uint16_t addr)
{
    return addr >= kRomBase;
}

} // namespace bespoke

#endif // BESPOKE_ISA_ISA_HH
