/**
 * @file
 * Static timing analysis and voltage/delay modeling.
 *
 * Delay model: gate delay = intrinsic + driveRes x load, where load is
 * the sum of fanout input-pin capacitances (plus a small wire estimate
 * per fanout). Launch points are flop Q pins (clock-to-Q) and primary
 * inputs; capture points are flop D/EN pins (plus setup) and primary
 * outputs. The critical path over all capture points defines the
 * minimum clock period.
 *
 * sizeForLoads() implements the synthesis sizing discipline: gates
 * driving heavy loads are upsized (X2/X4) to bound their load-dependent
 * delay. Running it again after cutting & stitching naturally downsizes
 * drivers whose fanout shrank — the paper's "smaller, lower power
 * versions of the cells" (Sec. 3.2).
 *
 * vminForPeriod() maps exposed timing slack to a reduced operating
 * voltage via the alpha-power-law delay model (Table 2): delay(V) =
 * delay(V0) x (V/V0) x ((V0-Vth)/(V-Vth))^alpha.
 */

#ifndef BESPOKE_TIMING_STA_HH
#define BESPOKE_TIMING_STA_HH

#include "src/netlist/netlist.hh"

namespace bespoke
{

/** Timing model constants. */
struct TimingParams
{
    double wireCapPerFanout = 0.35;  ///< fF per fanout pin
    double outputPortCap = 3.0;      ///< fF on primary outputs
    double clkToQ = 120.0;           ///< ps (already in the DFF cell)
    double setup = 35.0;             ///< ps at capture flops
    /** Loads (fF) above which a driver is upsized to X2 / X4. */
    double x2LoadThreshold = 14.0;
    double x4LoadThreshold = 28.0;
    /** Alpha-power-law voltage model. */
    double vNominal = 1.0;    ///< V
    double vThreshold = 0.35; ///< V
    double alpha = 1.3;
    double vMinFloor = 0.5;   ///< lowest safe voltage (V)
    /** Worst-case PVT guardband applied when searching Vmin. */
    double pvtMargin = 1.08;
};

struct TimingReport
{
    double criticalPathPs = 0.0;
    /** Gate ids along the critical path (launch to capture). */
    std::vector<GateId> criticalPath;
    /** Arrival time (ps) at each gate output. */
    std::vector<double> arrival;
};

/** Run STA at nominal voltage. */
TimingReport analyzeTiming(const Netlist &netlist,
                           const TimingParams &params = {});

/**
 * Per-gate timing query against a clock period: arrival times from the
 * forward STA pass plus required times from a backward pass over the
 * same delay model (capture constraints: period - setup at flop D/EN
 * pins, period at primary outputs). slack(g) = required(g) - arrival(g);
 * the minimum slack over all constrained gates equals
 * period - criticalPathPs. Nets that reach no capture point (dead
 * logic) have infinite required time and therefore infinite slack.
 *
 * The cost-driven rewrite passes (src/transform/pass_pipeline) use this
 * to find which datapath instances actually sit on tight paths; it is
 * equally usable standalone.
 */
class TimingQuery
{
  public:
    TimingQuery(const Netlist &netlist, double period_ps,
                const TimingParams &params = {});

    double periodPs() const { return periodPs_; }
    double criticalPathPs() const { return rep_.criticalPathPs; }
    const TimingReport &report() const { return rep_; }

    /** Arrival time (ps) at the gate's output net. */
    double arrival(GateId id) const { return rep_.arrival[id]; }
    /** Latest arrival (ps) that still meets every capture downstream. */
    double required(GateId id) const { return required_[id]; }
    /** required - arrival; negative = the gate is past the budget. */
    double slack(GateId id) const
    {
        return required_[id] - rep_.arrival[id];
    }
    /** Worst (smallest) slack over the whole design. */
    double worstSlack() const { return worstSlack_; }

  private:
    TimingReport rep_;
    std::vector<double> required_;
    double periodPs_ = 0.0;
    double worstSlack_ = 0.0;
};

/**
 * Assign drive strengths from fanout loads (mutates the netlist's
 * drive fields). Returns the number of gates not at X1 afterwards.
 */
size_t sizeForLoads(Netlist &netlist, const TimingParams &params = {});

/** Delay scale factor at voltage v relative to nominal. */
double delayScaleAtVoltage(double v, const TimingParams &params = {});

/**
 * Lowest voltage at which the design still meets the clock period
 * (including the PVT margin), not below vMinFloor.
 */
double vminForPeriod(double critical_path_ps, double period_ps,
                     const TimingParams &params = {});

} // namespace bespoke

#endif // BESPOKE_TIMING_STA_HH
