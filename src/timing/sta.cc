#include "src/timing/sta.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** Load (fF) seen by each gate's output. */
std::vector<double>
computeLoads(const Netlist &nl, const TimingParams &p)
{
    std::vector<double> load(nl.size(), 0.0);
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (g.type == CellType::OUTPUT) {
            load[g.in[0]] += p.outputPortCap;
            continue;
        }
        int n = g.numInputs();
        for (int pin = 0; pin < n; pin++) {
            load[g.in[pin]] +=
                cellInputCap(g.type, g.drive) + p.wireCapPerFanout;
        }
    }
    return load;
}

} // namespace

TimingReport
analyzeTiming(const Netlist &nl, const TimingParams &p)
{
    std::vector<double> load = computeLoads(nl, p);
    TimingReport rep;
    rep.arrival.assign(nl.size(), 0.0);
    std::vector<GateId> pred(nl.size(), kNoGate);

    // Launch points.
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellSequential(g.type)) {
            rep.arrival[i] = cellIntrinsicDelay(g.type, g.drive) +
                             cellDriveRes(g.type, g.drive) * load[i];
        } else if (g.type == CellType::INPUT) {
            rep.arrival[i] = 0.0;
        }
    }

    // Combinational propagation in topological order.
    for (GateId i : nl.levelize()) {
        const Gate &g = nl.gates()[i];
        if (g.type == CellType::OUTPUT) {
            rep.arrival[i] = rep.arrival[g.in[0]];
            pred[i] = g.in[0];
            continue;
        }
        double worst = 0.0;
        GateId worst_in = kNoGate;
        int n = g.numInputs();
        for (int pin = 0; pin < n; pin++) {
            if (rep.arrival[g.in[pin]] >= worst) {
                worst = rep.arrival[g.in[pin]];
                worst_in = g.in[pin];
            }
        }
        rep.arrival[i] = worst + cellIntrinsicDelay(g.type, g.drive) +
                         cellDriveRes(g.type, g.drive) * load[i];
        pred[i] = worst_in;
    }

    // Capture points: flop D/EN pins (+setup) and output ports.
    double critical = 0.0;
    GateId crit_end = kNoGate;
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        double t = 0.0;
        if (cellSequential(g.type)) {
            int n = g.numInputs();
            for (int pin = 0; pin < n; pin++)
                t = std::max(t, rep.arrival[g.in[pin]] + p.setup);
            if (t > critical) {
                critical = t;
                // End the reported path at the worst D-pin driver.
                double worst = -1.0;
                for (int pin = 0; pin < n; pin++) {
                    if (rep.arrival[g.in[pin]] > worst) {
                        worst = rep.arrival[g.in[pin]];
                        crit_end = g.in[pin];
                    }
                }
            }
        } else if (g.type == CellType::OUTPUT) {
            t = rep.arrival[i];
            if (t > critical) {
                critical = t;
                crit_end = i;
            }
        }
    }
    rep.criticalPathPs = critical;

    // Reconstruct the critical path.
    for (GateId cur = crit_end; cur != kNoGate; cur = pred[cur])
        rep.criticalPath.push_back(cur);
    std::reverse(rep.criticalPath.begin(), rep.criticalPath.end());
    return rep;
}

TimingQuery::TimingQuery(const Netlist &nl, double period_ps,
                         const TimingParams &p)
    : rep_(analyzeTiming(nl, p)), periodPs_(period_ps)
{
    bespoke_assert(period_ps > 0);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    required_.assign(nl.size(), kInf);
    std::vector<double> load = computeLoads(nl, p);

    auto relax = [&](GateId id, double t) {
        if (t < required_[id])
            required_[id] = t;
    };

    // Capture constraints at flop data/enable pins are independent of
    // the flop's own required time (the Q-side budget restarts at the
    // next cycle), so they seed the backward pass directly.
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (!cellSequential(g.type))
            continue;
        int n = g.numInputs();
        for (int pin = 0; pin < n; pin++)
            relax(g.in[pin], period_ps - p.setup);
    }

    // Backward propagation through the combinational fabric: a gate's
    // fanin must arrive early enough for the gate itself to meet its
    // own required time, minus the gate's load-dependent delay. The
    // reversed levelize() order finalizes required_[i] before i's
    // fanins are relaxed.
    std::vector<GateId> order = nl.levelize();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        GateId i = *it;
        const Gate &g = nl.gate(i);
        if (g.type == CellType::OUTPUT) {
            relax(i, period_ps);
            relax(g.in[0], required_[i]);
            continue;
        }
        // Paths are cut at flops: the D/EN capture constraint was
        // seeded above, and the Q-side budget restarts next cycle —
        // a flop's own required time never constrains its fanins.
        if (cellSequential(g.type))
            continue;
        if (required_[i] == kInf)
            continue;  // feeds no capture point; fanins unconstrained
        double delay = cellIntrinsicDelay(g.type, g.drive) +
                       cellDriveRes(g.type, g.drive) * load[i];
        int n = g.numInputs();
        for (int pin = 0; pin < n; pin++)
            relax(g.in[pin], required_[i] - delay);
    }

    worstSlack_ = kInf;
    for (GateId i = 0; i < nl.size(); i++) {
        if (required_[i] != kInf)
            worstSlack_ = std::min(worstSlack_, slack(i));
    }
    if (worstSlack_ == kInf)
        worstSlack_ = period_ps;  // no capture points at all
}

size_t
sizeForLoads(Netlist &nl, const TimingParams &p)
{
    // Iterate: upsizing a driver raises its own input capacitance,
    // which can push its fanin over threshold; a few sweeps settle it.
    size_t non_x1 = 0;
    for (int iter = 0; iter < 4; iter++) {
        std::vector<double> load = computeLoads(nl, p);
        bool changed = false;
        non_x1 = 0;
        for (GateId i = 0; i < nl.size(); i++) {
            Gate &g = nl.gateRef(i);
            if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
                g.type == CellType::TIE1) {
                continue;
            }
            Drive want = Drive::X1;
            if (load[i] > p.x4LoadThreshold)
                want = Drive::X4;
            else if (load[i] > p.x2LoadThreshold)
                want = Drive::X2;
            if (g.drive != want) {
                g.drive = want;
                changed = true;
            }
            if (want != Drive::X1)
                non_x1++;
        }
        if (!changed)
            break;
    }
    return non_x1;
}

double
delayScaleAtVoltage(double v, const TimingParams &p)
{
    bespoke_assert(v > p.vThreshold);
    double num = p.vNominal - p.vThreshold;
    double den = v - p.vThreshold;
    return (v / p.vNominal) * std::pow(num / den, p.alpha);
}

double
vminForPeriod(double critical_path_ps, double period_ps,
              const TimingParams &p)
{
    bespoke_assert(critical_path_ps > 0 && period_ps > 0);
    double budget = period_ps / (critical_path_ps * p.pvtMargin);
    if (budget <= 1.0)
        return p.vNominal;  // no slack to exploit

    double lo = p.vMinFloor, hi = p.vNominal;
    // delayScale is monotonically decreasing in V; find the lowest V
    // with delayScale(V) <= budget.
    if (delayScaleAtVoltage(lo, p) <= budget)
        return lo;
    for (int i = 0; i < 60; i++) {
        double mid = (lo + hi) / 2;
        if (delayScaleAtVoltage(mid, p) <= budget)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace bespoke
