/**
 * @file
 * Invariant tests for the input-independent gate activity analysis:
 * soundness with respect to concrete executions (every gate that
 * toggles in any concrete run must be marked toggleable), constant
 * discovery, decision forking, and termination on unbounded loops.
 */

#include <deque>

#include <gtest/gtest.h>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/verify/runner.hh"

namespace bespoke
{
namespace
{

const Netlist &
core()
{
    static Netlist nl = buildBsp430();
    return nl;
}

AsmProgram &
prog(const std::string &body)
{
    static std::deque<AsmProgram> keep;
    keep.push_back(assemble(std::string("        .org 0xf000\n") + body +
                            "\n        .org 0xfffe\n        .word 0xf000\n"));
    return keep.back();
}

TEST(Analysis, StraightLineCodeHasNoForks)
{
    AsmProgram &p = prog(R"(
        mov #0x0a00, sp
        mov #5, r5
        add #3, r5
        mov r5, &0x0400
halt:   jmp halt
    )");
    AnalysisResult r = analyzeActivity(core(), p);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.forks, 0u);
    EXPECT_EQ(r.pathsExplored, 1u);
    EXPECT_GT(r.untoggledCells(), core().numCells() / 3);
}

TEST(Analysis, InputDependentBranchForks)
{
    AsmProgram &p = prog(R"(
        mov #0x0a00, sp
        mov &0x0300, r5      ; X input
        tst r5
        jz  zero
        mov #1, &0x0400
        jmp halt
zero:   mov #2, &0x0400
halt:   jmp halt
    )");
    AnalysisResult r = analyzeActivity(core(), p);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.forks, 1u);
    EXPECT_GE(r.pathsExplored, 2u);
}

TEST(Analysis, TerminatesOnUnboundedCounterLoop)
{
    // A deliberately infinite concrete loop: the conservative-state
    // table must saturate and terminate the exploration.
    AsmProgram &p = prog(R"(
        mov #0x0a00, sp
        clr r5
loop:   inc r5
        jmp loop
    )");
    AnalysisOptions opts;
    opts.concreteVisits = 8;
    AnalysisResult r = analyzeActivity(core(), p, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.merges, 0u);
}

TEST(Analysis, TerminatesOnInputDependentLoop)
{
    AsmProgram &p = prog(R"(
        mov #0x0a00, sp
        mov &0x0300, r5
loop:   dec r5
        jnz loop
        mov #1, &0x0400
halt:   jmp halt
    )");
    AnalysisOptions opts;
    opts.concreteVisits = 8;
    AnalysisResult r = analyzeActivity(core(), p, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.forks, 1u);
}

TEST(Analysis, SoundnessAgainstConcreteRuns)
{
    // Every gate that toggles in ANY concrete run of a workload must
    // be marked toggleable by the input-independent analysis.
    for (const char *name : {"div", "tHold", "rle"}) {
        const Workload &w = workloadByName(name);
        AnalysisResult symbolic = analyzeActivity(core(), w);
        ASSERT_TRUE(symbolic.completed);

        AsmProgram p = w.assembleProgram();
        Rng rng(321);
        for (int t = 0; t < 3; t++) {
            WorkloadInput in = w.genInput(rng);
            ActivityTracker concrete(core());
            GateRun run =
                runWorkloadGate(core(), w, p, in, nullptr, &concrete);
            ASSERT_TRUE(run.halted);
            for (GateId i = 0; i < core().size(); i++) {
                if (concrete.toggled(i)) {
                    ASSERT_TRUE(symbolic.activity->toggled(i))
                        << name << ": gate " << i << " ("
                        << cellName(core().gate(i).type,
                                    core().gate(i).drive)
                        << " in "
                        << moduleName(core().gate(i).module)
                        << ") toggled concretely but the analysis "
                           "missed it";
                }
            }
        }
    }
}

TEST(Analysis, ConstantsMatchConcreteValues)
{
    // Untoggled gates' proven constants must equal their values in a
    // concrete run (at any observed cycle; we check the final state).
    const Workload &w = workloadByName("div");
    AnalysisResult symbolic = analyzeActivity(core(), w);
    AsmProgram p = w.assembleProgram();
    Rng rng(55);
    WorkloadInput in = w.genInput(rng);

    Soc soc(core(), p, false);
    soc.setGpioIn(SWord::of(in.gpioIn));
    soc.setIrqExt(Logic::Zero);
    for (size_t i = 0; i < in.ramWords.size(); i++) {
        soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                        SWord::of(in.ramWords[i]));
    }
    for (int c = 0; c < 500; c++)
        soc.cycle();
    for (GateId i = 0; i < core().size(); i++) {
        if (cellPseudo(core().gate(i).type))
            continue;
        if (!symbolic.activity->toggled(i)) {
            EXPECT_EQ(soc.sim().value(i),
                      symbolic.activity->initialValue(i))
                << "gate " << i;
        }
    }
}

TEST(Analysis, IrqLineKnownZeroSuppressesIrqForks)
{
    const Workload &w = workloadByName("irq");
    AsmProgram p = w.assembleProgram();
    AnalysisOptions opts;
    opts.irqLineUnknown = false;  // tie the IRQ pin low
    AnalysisResult quiet = analyzeActivity(core(), p, opts);
    opts.irqLineUnknown = true;
    AnalysisResult noisy = analyzeActivity(core(), p, opts);
    EXPECT_TRUE(quiet.completed);
    // With the pin tied low the ISR is unreachable; far fewer gates
    // can toggle.
    EXPECT_GT(quiet.untoggledCells(), noisy.untoggledCells());
}

TEST(Analysis, MultiplierConstrainedByConstantCoefficients)
{
    // intFilt writes only constant coefficients into MPYS: part of the
    // multiplier must be provably untoggleable; mult (arbitrary
    // operands) must use almost all of it (paper Sec. 5 discussion).
    AnalysisResult filt =
        analyzeActivity(core(), workloadByName("intFilt"));
    AnalysisResult mult =
        analyzeActivity(core(), workloadByName("mult"));
    size_t filt_mult_toggled = 0, mult_mult_toggled = 0, total = 0;
    for (GateId i = 0; i < core().size(); i++) {
        const Gate &g = core().gate(i);
        if (cellPseudo(g.type) || g.module != Module::Mult)
            continue;
        total++;
        filt_mult_toggled += filt.activity->toggled(i);
        mult_mult_toggled += mult.activity->toggled(i);
    }
    EXPECT_LT(filt_mult_toggled, total * 3 / 4);
    EXPECT_GT(mult_mult_toggled, total * 3 / 4);
    EXPECT_LT(filt_mult_toggled, mult_mult_toggled);
}

} // namespace
} // namespace bespoke
