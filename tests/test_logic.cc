/**
 * @file
 * Property tests for the Kleene three-valued algebra and symbolic
 * words: soundness of every operator (an X result must cover both
 * concretizations), algebraic laws, and the merge/substate lattice
 * used by the conservative-state table.
 */

#include <gtest/gtest.h>

#include "src/logic/logic.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

const Logic kAll[] = {Logic::Zero, Logic::One, Logic::X};

/** All concrete values covered by a three-valued signal. */
std::vector<bool>
concretizations(Logic v)
{
    switch (v) {
      case Logic::Zero:
        return {false};
      case Logic::One:
        return {true};
      default:
        return {false, true};
    }
}

/** v soundly abstracts concrete c. */
bool
covers(Logic v, bool c)
{
    return v == Logic::X || knownValue(v) == c;
}

TEST(Logic, BinaryOperatorsAreSoundAbstractions)
{
    for (Logic a : kAll) {
        for (Logic b : kAll) {
            for (bool ca : concretizations(a)) {
                for (bool cb : concretizations(b)) {
                    EXPECT_TRUE(covers(logicAnd(a, b), ca && cb));
                    EXPECT_TRUE(covers(logicOr(a, b), ca || cb));
                    EXPECT_TRUE(covers(logicXor(a, b), ca != cb));
                }
            }
            for (bool ca : concretizations(a))
                EXPECT_TRUE(covers(logicNot(a), !ca));
        }
    }
}

TEST(Logic, MuxIsSound)
{
    for (Logic s : kAll) {
        for (Logic a0 : kAll) {
            for (Logic a1 : kAll) {
                for (bool cs : concretizations(s)) {
                    for (bool c0 : concretizations(a0)) {
                        for (bool c1 : concretizations(a1)) {
                            bool expect = cs ? c1 : c0;
                            EXPECT_TRUE(covers(logicMux(s, a0, a1),
                                               expect));
                        }
                    }
                }
            }
        }
    }
}

TEST(Logic, MuxIsPreciseOnAgreement)
{
    // X select with agreeing known inputs must stay known.
    EXPECT_EQ(logicMux(Logic::X, Logic::One, Logic::One), Logic::One);
    EXPECT_EQ(logicMux(Logic::X, Logic::Zero, Logic::Zero),
              Logic::Zero);
    EXPECT_EQ(logicMux(Logic::X, Logic::Zero, Logic::One), Logic::X);
}

TEST(Logic, KleeneLaws)
{
    for (Logic a : kAll) {
        for (Logic b : kAll) {
            // Commutativity.
            EXPECT_EQ(logicAnd(a, b), logicAnd(b, a));
            EXPECT_EQ(logicOr(a, b), logicOr(b, a));
            EXPECT_EQ(logicXor(a, b), logicXor(b, a));
            // De Morgan.
            EXPECT_EQ(logicNot(logicAnd(a, b)),
                      logicOr(logicNot(a), logicNot(b)));
        }
        // Involution, annihilator, identity.
        EXPECT_EQ(logicNot(logicNot(a)), a);
        EXPECT_EQ(logicAnd(a, Logic::Zero), Logic::Zero);
        EXPECT_EQ(logicOr(a, Logic::One), Logic::One);
        EXPECT_EQ(logicAnd(a, Logic::One), a);
        EXPECT_EQ(logicOr(a, Logic::Zero), a);
    }
}

TEST(SWord, BitAccessRoundTrip)
{
    SWord w = SWord::of(0xa5c3);
    EXPECT_TRUE(w.fullyKnown());
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(w.bit(i), logicOf((0xa5c3 >> i) & 1));
    w.setBit(3, Logic::X);
    EXPECT_FALSE(w.fullyKnown());
    EXPECT_EQ(w.bit(3), Logic::X);
    w.setBit(3, Logic::One);
    EXPECT_EQ(w.val, 0xa5cb);
}

TEST(SWord, MergeIsLeastUpperBoundish)
{
    Rng rng(1);
    for (int t = 0; t < 200; t++) {
        SWord a(rng.word(), rng.word());
        SWord b(rng.word(), rng.word());
        SWord m = SWord::merge(a, b);
        // Both inputs are substates of the merge.
        EXPECT_TRUE(a.substateOf(m));
        EXPECT_TRUE(b.substateOf(m));
        // Merge is idempotent and commutative.
        EXPECT_EQ(SWord::merge(m, a), m);
        EXPECT_EQ(SWord::merge(a, b), SWord::merge(b, a));
    }
}

TEST(SWord, SubstatePartialOrder)
{
    Rng rng(2);
    for (int t = 0; t < 200; t++) {
        SWord a(rng.word(), rng.word());
        // Reflexive.
        EXPECT_TRUE(a.substateOf(a));
        // Anything is a substate of all-X.
        EXPECT_TRUE(a.substateOf(SWord::allX()));
        // A fully known word is a substate only of covers.
        SWord k = SWord::of(rng.word());
        SWord widened = k;
        widened.setBit(static_cast<int>(rng.below(16)), Logic::X);
        EXPECT_TRUE(k.substateOf(widened));
        if (k.fullyKnown() && widened.anyX()) {
            EXPECT_FALSE(widened.substateOf(k));
        }
    }
}

TEST(Rng, Deterministic)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
    Rng c(100);
    bool differs = false;
    Rng a2(99);
    for (int i = 0; i < 100; i++)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace bespoke
