/**
 * @file
 * Property-based tests for the width-generic Kleene plane connectives
 * (src/sim/plane.hh), at every instantiated width W ∈ {64, 128, 256,
 * 512}:
 *
 *  - per-lane correspondence: every lane of every plane op decodes to
 *    exactly the scalar three-valued connective (src/logic) applied to
 *    that lane's decoded inputs;
 *  - canonical form: every op keeps val ⊆ known;
 *  - X-monotonicity: weakening any input lane toward X (dropping known
 *    bits) can only weaken the output lane toward X — a known output
 *    value never flips. This is the property the batch runners rely on
 *    when they conservatively widen lanes;
 *  - cross-word boundaries: directed single-lane stimulus at lanes 63,
 *    64, 65 and W-1 pins that multi-word planes don't smear state
 *    across uint64_t word edges.
 */

#include <gtest/gtest.h>

#include "src/logic/logic.hh"
#include "src/sim/plane.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

template <class M>
M
randomMask(Rng &rng)
{
    auto word = [&rng] {
        return (static_cast<uint64_t>(rng.next()) << 32) | rng.next();
    };
    if constexpr (std::is_same_v<M, uint64_t>) {
        return word();
    } else {
        M m{};
        for (auto &w : m.w)
            w = word();
        return m;
    }
}

/** Random canonical (val ⊆ known) plane pair, with plenty of X. */
template <class M>
PlanesT<M>
randomPlanes(Rng &rng)
{
    M k = randomMask<M>(rng) | randomMask<M>(rng);  // ~75% known
    M v = randomMask<M>(rng) & k;
    return {v, k};
}

template <class M>
Logic
decodeLane(const PlanesT<M> &p, int lane)
{
    if (!laneTest(p.k, lane))
        return Logic::X;
    return laneTest(p.v, lane) ? Logic::One : Logic::Zero;
}

template <class M>
void
encodeLane(PlanesT<M> &p, int lane, Logic v)
{
    laneClear(p.v, lane);
    laneClear(p.k, lane);
    if (v != Logic::X) {
        laneSet(p.k, lane);
        if (v == Logic::One)
            laneSet(p.v, lane);
    }
}

template <class M>
bool
canonical(const PlanesT<M> &p)
{
    return !laneAny(p.v & ~p.k);
}

/** Information order: wherever `weak` is known it agrees with `strong`. */
template <class M>
bool
weakerOrEqual(const PlanesT<M> &weak, const PlanesT<M> &strong)
{
    if (laneAny(weak.k & ~strong.k))
        return false;
    return !laneAny((weak.v ^ strong.v) & weak.k);
}

/** Drop known bits of `p` under `drop` (weaken those lanes to X). */
template <class M>
PlanesT<M>
weaken(const PlanesT<M> &p, const M &drop)
{
    M k = p.k & ~drop;
    return {p.v & k, k};
}

constexpr int kOps = 6;

/** Apply plane op `op` (0..5) to canonical inputs. */
template <class M>
PlanesT<M>
applyPlaneOp(int op, const PlanesT<M> &a, const PlanesT<M> &b,
             const PlanesT<M> &c)
{
    switch (op) {
    case 0: return pNot(a);
    case 1: return pAnd(a, b);
    case 2: return pOr(a, b);
    case 3: return pXor(a, b);
    case 4: return pXnor(a, b);
    default: return pMux(a, b, c);  // a0 = a, a1 = b, sel = c
    }
}

Logic
applyScalarOp(int op, Logic a, Logic b, Logic c)
{
    switch (op) {
    case 0: return logicNot(a);
    case 1: return logicAnd(a, b);
    case 2: return logicOr(a, b);
    case 3: return logicXor(a, b);
    case 4: return logicNot(logicXor(a, b));
    default: return logicMux(c, a, b);
    }
}

const char *const kOpNames[kOps] = {"not", "and", "or",
                                    "xor", "xnor", "mux"};

template <int W>
void
runPlaneProperties(uint32_t seed, int rounds)
{
    using M = LaneMask<W>;
    Rng rng(seed);

    for (int round = 0; round < rounds; round++) {
        PlanesT<M> a = randomPlanes<M>(rng);
        PlanesT<M> b = randomPlanes<M>(rng);
        PlanesT<M> c = randomPlanes<M>(rng);

        for (int op = 0; op < kOps; op++) {
            PlanesT<M> r = applyPlaneOp(op, a, b, c);
            ASSERT_TRUE(canonical(r))
                << "W=" << W << " " << kOpNames[op]
                << " broke val ⊆ known, round " << round;

            // Per-lane correspondence with the scalar connective.
            for (int lane : {0, 1, 63, W > 64 ? 64 : 2,
                             W > 64 ? 65 : 3, W / 2, W - 1}) {
                ASSERT_EQ(decodeLane(r, lane),
                          applyScalarOp(op, decodeLane(a, lane),
                                        decodeLane(b, lane),
                                        decodeLane(c, lane)))
                    << "W=" << W << " " << kOpNames[op] << " lane "
                    << lane << " round " << round;
            }

            // X-monotonicity: weakening inputs weakens the output.
            PlanesT<M> r2 = applyPlaneOp(
                op, weaken(a, randomMask<M>(rng)),
                weaken(b, randomMask<M>(rng)),
                weaken(c, randomMask<M>(rng)));
            ASSERT_TRUE(canonical(r2));
            ASSERT_TRUE(weakerOrEqual(r2, r))
                << "W=" << W << " " << kOpNames[op]
                << " is not X-monotone, round " << round;
        }
    }
}

/**
 * Exhaustive single-lane truth check at the word-boundary lanes: every
 * op, every 3^3 input combination, with all other lanes pinned to a
 * contrasting background — a value smeared across a word edge (or a
 * lane>>64 shift bug) flips one of these.
 */
template <int W>
void
runBoundaryLanes()
{
    using M = LaneMask<W>;
    std::vector<int> lanes = {0, 63, W - 1};
    if (W > 64) {
        lanes.push_back(64);
        lanes.push_back(65);
        lanes.push_back(W - 64);
    }
    constexpr Logic vals[3] = {Logic::Zero, Logic::One, Logic::X};

    for (int lane : lanes) {
        for (int op = 0; op < kOps; op++) {
            for (Logic la : vals) {
                for (Logic lb : vals) {
                    for (Logic lc : vals) {
                        // Background: everything known One (maximally
                        // contrasting with the X/Zero cases).
                        PlanesT<M> a{laneOnes<M>(), laneOnes<M>()};
                        PlanesT<M> b = a, c = a;
                        encodeLane(a, lane, la);
                        encodeLane(b, lane, lb);
                        encodeLane(c, lane, lc);
                        PlanesT<M> r = applyPlaneOp(op, a, b, c);
                        ASSERT_EQ(decodeLane(r, lane),
                                  applyScalarOp(op, la, lb, lc))
                            << "W=" << W << " " << kOpNames[op]
                            << " lane " << lane;
                        // Neighbors keep the background result.
                        for (int d : {-1, 1}) {
                            int nb = lane + d;
                            if (nb < 0 || nb >= W || nb == lane)
                                continue;
                            ASSERT_EQ(
                                decodeLane(r, nb),
                                applyScalarOp(op, Logic::One,
                                              Logic::One, Logic::One))
                                << "W=" << W << " " << kOpNames[op]
                                << " smeared into lane " << nb
                                << " from " << lane;
                        }
                    }
                }
            }
        }
    }
}

TEST(PlaneX, Monotonicity64) { runPlaneProperties<64>(11, 300); }
TEST(PlaneX, Monotonicity128) { runPlaneProperties<128>(12, 200); }
TEST(PlaneX, Monotonicity256) { runPlaneProperties<256>(13, 150); }
TEST(PlaneX, Monotonicity512) { runPlaneProperties<512>(14, 100); }

TEST(PlaneX, BoundaryLanes64) { runBoundaryLanes<64>(); }
TEST(PlaneX, BoundaryLanes128) { runBoundaryLanes<128>(); }
TEST(PlaneX, BoundaryLanes256) { runBoundaryLanes<256>(); }
TEST(PlaneX, BoundaryLanes512) { runBoundaryLanes<512>(); }

} // namespace
} // namespace bespoke
