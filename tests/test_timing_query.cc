/**
 * @file
 * TimingQuery: per-gate arrival / required / slack against the forward
 * STA report. The backward required-time pass must agree with the
 * forward pass on the critical path (worst slack = period - critical
 * when the critical path ends at a capture point) and must leave
 * gates with no downstream capture unconstrained.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/builder/net_builder.hh"
#include "src/timing/sta.hh"

namespace bespoke
{
namespace
{

/** Input -> INV chain -> output, plus a flop capturing mid-chain. */
Netlist
chainDesign(int length, std::vector<GateId> *chain)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId in = nl.addInput("in");
    GateId g = in;
    for (int i = 0; i < length; i++) {
        g = b.inv(g);
        chain->push_back(g);
    }
    nl.addOutput("out", g);
    nl.validate();
    return nl;
}

TEST(TimingQuery, SingleChainSlackIsUniform)
{
    std::vector<GateId> chain;
    Netlist nl = chainDesign(8, &chain);
    TimingReport rep = analyzeTiming(nl);
    double period = rep.criticalPathPs * 1.25;
    TimingQuery q(nl, period);

    EXPECT_DOUBLE_EQ(q.periodPs(), period);
    EXPECT_DOUBLE_EQ(q.criticalPathPs(), rep.criticalPathPs);
    // One path: every gate on it has the same slack, equal to the
    // whole-design worst slack = period - critical.
    EXPECT_NEAR(q.worstSlack(), period - rep.criticalPathPs, 1e-9);
    for (GateId g : chain) {
        EXPECT_NEAR(q.slack(g), q.worstSlack(), 1e-9) << "gate " << g;
        EXPECT_DOUBLE_EQ(q.arrival(g), rep.arrival[g]);
        EXPECT_NEAR(q.required(g) - q.arrival(g), q.slack(g), 1e-12);
    }
}

TEST(TimingQuery, ArrivalMatchesForwardReport)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId c = nl.addInput("b");
    GateId x = b.and2(a, c);
    GateId y = b.or2(x, b.inv(a));
    b.dff(y);
    nl.addOutput("out", x);
    nl.validate();

    TimingReport rep = analyzeTiming(nl);
    TimingQuery q(nl, rep.criticalPathPs * 1.02);
    for (GateId i = 0; i < nl.size(); i++)
        EXPECT_DOUBLE_EQ(q.arrival(i), rep.arrival[i]) << "gate " << i;
}

TEST(TimingQuery, FlopDataPinRequiredIncludesSetup)
{
    TimingParams params;
    Netlist nl;
    NetBuilder b(nl);
    GateId in = nl.addInput("in");
    GateId d = b.inv(in);
    GateId ff = b.dff(d);
    nl.addOutput("out", ff);
    nl.validate();

    double period = 1000.0;
    TimingQuery q(nl, period, params);
    // The INV drives only the flop's D pin: its required time is the
    // capture budget, period - setup.
    EXPECT_NEAR(q.required(d), period - params.setup, 1e-9);
    // The flop's own output drives the port: required = period.
    EXPECT_NEAR(q.required(ff), period, 1e-9);
}

TEST(TimingQuery, DeadGateIsUnconstrained)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId in = nl.addInput("in");
    GateId live = b.inv(in);
    GateId dead = b.inv(in);  // no fanout: no downstream capture
    nl.addOutput("out", live);
    nl.validate();

    TimingQuery q(nl, 1000.0);
    EXPECT_TRUE(std::isinf(q.required(dead)));
    EXPECT_TRUE(std::isinf(q.slack(dead)));
    EXPECT_FALSE(std::isinf(q.required(live)));
    // Unconstrained gates do not drag the design's worst slack.
    EXPECT_NEAR(q.worstSlack(), q.slack(live), 1e-9);
}

TEST(TimingQuery, NegativeSlackWhenOverBudget)
{
    std::vector<GateId> chain;
    Netlist nl = chainDesign(12, &chain);
    TimingReport rep = analyzeTiming(nl);
    TimingQuery q(nl, rep.criticalPathPs * 0.5);
    EXPECT_LT(q.worstSlack(), 0.0);
    EXPECT_NEAR(q.worstSlack(),
                rep.criticalPathPs * 0.5 - rep.criticalPathPs, 1e-9);
}

TEST(TimingQuery, RequiredIsMonotoneAlongAPath)
{
    std::vector<GateId> chain;
    Netlist nl = chainDesign(6, &chain);
    TimingQuery q(nl, 2000.0);
    // Along a single path the required time grows with the arrival
    // time: each stage's budget is the next stage's minus its delay.
    for (size_t i = 1; i < chain.size(); i++)
        EXPECT_LT(q.required(chain[i - 1]), q.required(chain[i]));
}

} // namespace
} // namespace bespoke
