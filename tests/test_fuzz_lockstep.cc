/**
 * @file
 * Randomized lock-step fuzzing of the gate-level core against the ISS:
 * generated programs mix every format-I/II operation, addressing mode,
 * byte/word size, constant-generator immediate, and short branches,
 * then halt. Architectural state must match after every instruction.
 * This is the broadest net for ISA corner cases (flag updates, byte
 * writes to registers, post-increment, SR destinations, ...).
 */

#include <gtest/gtest.h>

#include "src/cpu/bsp430.hh"
#include "src/isa/assembler.hh"
#include "src/iss/iss.hh"
#include "src/sim/soc.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

struct Core
{
    CpuProbes probes;
    Netlist netlist;
    Core() : netlist(buildBsp430(&probes)) {}
};

Core &
core()
{
    static Core c;
    return c;
}

/** Generate a random but well-defined program. */
std::string
randomProgram(Rng &rng, int instructions)
{
    std::ostringstream os;
    os << "        .org 0xf000\n";
    os << "start:  mov #0x0a00, sp\n";
    // Seed registers and a small RAM scratch area.
    for (int r = 4; r <= 12; r++) {
        os << "        mov #0x" << std::hex << rng.word() << std::dec
           << ", r" << r << "\n";
    }
    for (int i = 0; i < 4; i++) {
        os << "        mov #0x" << std::hex << rng.word() << std::dec
           << ", &0x0" << std::hex << (0x300 + 2 * i) << std::dec
           << "\n";
    }
    os << "        mov #0x0300, r13\n";  // pointer for @r13 modes

    const char *two_ops[] = {"mov", "add",  "addc", "sub", "subc",
                             "cmp", "bit",  "bic",  "bis", "xor",
                             "and"};
    const char *one_ops[] = {"rrc", "rra", "swpb", "sxt"};

    for (int i = 0; i < instructions; i++) {
        int kind = static_cast<int>(rng.below(10));
        bool byte_mode = rng.chance(1, 4);
        std::string suffix = byte_mode ? ".b" : "";
        auto reg = [&]() {
            return "r" + std::to_string(4 + rng.below(9));
        };
        auto src = [&]() -> std::string {
            switch (rng.below(6)) {
              case 0:
                return reg();
              case 1: {
                uint16_t cg[] = {0, 1, 2, 4, 8, 0xffff};
                return "#" + std::to_string(cg[rng.below(6)]);
              }
              case 2:
                return "#0x" + [&] {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "%x", rng.word());
                    return std::string(buf);
                }();
              case 3:
                return "&0x030" + std::to_string(rng.below(4) * 2);
              case 4:
                return "@r13";
              default:
                return std::to_string(rng.below(4) * 2) + "(r13)";
            }
        };
        auto dst = [&]() -> std::string {
            switch (rng.below(3)) {
              case 0:
                return reg();
              case 1:
                return "&0x030" + std::to_string(rng.below(4) * 2);
              default:
                return std::to_string(rng.below(4) * 2) + "(r13)";
            }
        };

        if (kind < 6) {
            os << "        " << two_ops[rng.below(11)] << suffix << " "
               << src() << ", " << dst() << "\n";
        } else if (kind < 8) {
            const char *op = one_ops[rng.below(4)];
            if (std::string(op) == "swpb" || std::string(op) == "sxt")
                suffix = "";  // word-only
            os << "        " << op << suffix << " " << reg() << "\n";
        } else if (kind == 8) {
            os << "        push " << reg() << "\n";
            os << "        pop " << reg() << "\n";
        } else {
            // Short forward branch over one filler instruction; both
            // directions of every condition get exercised across
            // seeds.
            const char *conds[] = {"jne", "jeq", "jnc", "jc",
                                   "jn",  "jge", "jl"};
            std::string label = "l" + std::to_string(i);
            os << "        cmp " << reg() << ", " << reg() << "\n";
            os << "        " << conds[rng.below(7)] << " " << label
               << "\n";
            os << "        xor #0x5a5a, " << reg() << "\n";
            os << label << ":\n";
        }
    }
    os << "halt:   jmp halt\n";
    os << "        .org 0xfffe\n        .word start\n";
    return os.str();
}

class FuzzLockstep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(FuzzLockstep, RandomProgramMatchesIss)
{
    Rng rng(GetParam() * 7919 + 13);
    std::string source = randomProgram(rng, 40);
    AsmProgram prog = assemble(source, "fuzz");

    Iss iss(prog);
    Soc soc(core().netlist, prog, /*ram_unknown=*/false);
    soc.setGpioIn(SWord::of(0));
    soc.setIrqExt(Logic::Zero);

    const CpuProbes &pr = core().probes;
    auto at_fetch = [&] {
        return soc.sim().busWord(pr.stateReg) ==
               SWord(static_cast<uint16_t>(CpuState::Fetch), 0x001f);
    };
    for (int i = 0; i < 10 && !at_fetch(); i++)
        soc.cycle();
    ASSERT_TRUE(at_fetch());

    for (int n = 0; n < 4000; n++) {
        uint16_t pc_before = iss.pc();
        StepResult r = iss.step();
        int guard = 0;
        do {
            soc.cycle();
            ASSERT_LT(++guard, 64);
        } while (!at_fetch());

        SWord pc = soc.sim().busWord(pr.pc);
        ASSERT_TRUE(pc.fullyKnown());
        ASSERT_EQ(pc.val, iss.pc())
            << "after insn at 0x" << std::hex << pc_before << " ("
            << decode(prog.romWord(pc_before)).toString() << ")";
        for (int reg = 0; reg < 16; reg++) {
            if (pr.regs[reg].empty())
                continue;
            SWord v = soc.sim().busWord(pr.regs[reg]);
            ASSERT_TRUE(v.fullyKnown());
            ASSERT_EQ(v.val, iss.reg(reg))
                << "r" << reg << " after insn at 0x" << std::hex
                << pc_before << " ("
                << decode(prog.romWord(pc_before)).toString() << ")";
        }
        uint16_t gate_sr =
            (soc.sim().value(pr.flagC) == Logic::One ? kFlagC : 0) |
            (soc.sim().value(pr.flagZ) == Logic::One ? kFlagZ : 0) |
            (soc.sim().value(pr.flagN) == Logic::One ? kFlagN : 0) |
            (soc.sim().value(pr.flagGIE) == Logic::One ? kFlagGIE
                                                       : 0) |
            (soc.sim().value(pr.flagV) == Logic::One ? kFlagV : 0);
        ASSERT_EQ(gate_sr, iss.sr() & (kFlagC | kFlagZ | kFlagN |
                                       kFlagGIE | kFlagV))
            << "SR after insn at 0x" << std::hex << pc_before << " ("
            << decode(prog.romWord(pc_before)).toString() << ")";

        if (r == StepResult::Halted)
            return;
        ASSERT_EQ(r, StepResult::Ok);
    }
    FAIL() << "program did not halt";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLockstep,
                         ::testing::Range(1u, 13u));

} // namespace
} // namespace bespoke
