/**
 * @file
 * Flow checkpointing: a killed run resumes at the last completed stage
 * and reproduces the uninterrupted flow bit for bit (same untoggled
 * set, identical area/power/timing doubles); a repeated run
 * short-circuits every stage; corrupt or foreign artifacts are treated
 * as misses and recomputed, never trusted.
 */

#include <fcntl.h>
#include <sys/stat.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/bespoke/checkpoint.hh"
#include "src/bespoke/flow.hh"

namespace fs = std::filesystem;

namespace bespoke
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "bespoke_" + name;
    fs::remove_all(dir);
    return dir;
}

size_t
fileCount(const std::string &dir)
{
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir))
        n += e.is_regular_file();
    return n;
}

/** The one artifact file whose name contains `stage`. */
std::string
stageFile(const std::string &dir, const std::string &stage)
{
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().filename().string().find("." + stage + ".") !=
            std::string::npos)
            return e.path().string();
    }
    ADD_FAILURE() << "no " << stage << " artifact in " << dir;
    return "";
}

FlowOptions
fastOpts(const std::string &dir = "")
{
    FlowOptions opts;
    opts.powerInputsPerWorkload = 1;
    opts.checkpointDir = dir;
    return opts;
}

void
expectSameDesign(const BespokeDesign &a, const BespokeDesign &b)
{
    // Netlists bit-identical (id-exact, not just isomorphic).
    ASSERT_EQ(a.netlist.size(), b.netlist.size());
    EXPECT_EQ(a.netlist.contentHash(), b.netlist.contentHash());
    for (GateId i = 0; i < a.netlist.size(); i++) {
        const Gate &ga = a.netlist.gate(i);
        const Gate &gb = b.netlist.gate(i);
        ASSERT_TRUE(ga.type == gb.type && ga.drive == gb.drive &&
                    ga.module == gb.module &&
                    ga.resetValue == gb.resetValue &&
                    ga.in[0] == gb.in[0] && ga.in[1] == gb.in[1] &&
                    ga.in[2] == gb.in[2])
            << "gate " << i << " differs";
    }

    EXPECT_EQ(a.cut.gatesBefore, b.cut.gatesBefore);
    EXPECT_EQ(a.cut.gatesCutDirect, b.cut.gatesCutDirect);
    EXPECT_EQ(a.cut.gatesAfter, b.cut.gatesAfter);

    // Same untoggled-gate set and proven constants.
    const ActivityTracker &ta = *a.analysis.activity;
    const ActivityTracker &tb = *b.analysis.activity;
    ASSERT_EQ(ta.netlist().size(), tb.netlist().size());
    for (GateId i = 0; i < ta.netlist().size(); i++) {
        ASSERT_EQ(ta.toggled(i), tb.toggled(i)) << "gate " << i;
        if (!ta.toggled(i)) {
            ASSERT_EQ(ta.initialValue(i), tb.initialValue(i))
                << "gate " << i;
        }
    }
    EXPECT_EQ(a.analysis.pathsExplored, b.analysis.pathsExplored);
    EXPECT_EQ(a.analysis.cyclesSimulated, b.analysis.cyclesSimulated);
    EXPECT_EQ(a.analysis.merges, b.analysis.merges);
    EXPECT_EQ(a.analysis.forks, b.analysis.forks);

    // Metrics doubles must be exactly equal, not approximately: the
    // JSON round trip uses %.17g, which is lossless for doubles.
    EXPECT_EQ(a.metrics.gates, b.metrics.gates);
    EXPECT_EQ(a.metrics.flops, b.metrics.flops);
    EXPECT_EQ(a.metrics.areaUm2, b.metrics.areaUm2);
    EXPECT_EQ(a.metrics.criticalPathPs, b.metrics.criticalPathPs);
    EXPECT_EQ(a.metrics.slackFraction, b.metrics.slackFraction);
    EXPECT_EQ(a.metrics.vmin, b.metrics.vmin);
    EXPECT_EQ(a.metrics.powerNominal.switchingUW,
              b.metrics.powerNominal.switchingUW);
    EXPECT_EQ(a.metrics.powerNominal.clockUW,
              b.metrics.powerNominal.clockUW);
    EXPECT_EQ(a.metrics.powerNominal.leakageUW,
              b.metrics.powerNominal.leakageUW);
    EXPECT_EQ(a.metrics.powerAtVmin.switchingUW,
              b.metrics.powerAtVmin.switchingUW);
    EXPECT_EQ(a.metrics.powerAtVmin.clockUW,
              b.metrics.powerAtVmin.clockUW);
    EXPECT_EQ(a.metrics.powerAtVmin.leakageUW,
              b.metrics.powerAtVmin.leakageUW);
}

TEST(Checkpoint, ResumeAndShortCircuitAreBitIdentical)
{
    std::string dir = freshDir("ckpt_resume");
    const Workload &w = workloadByName("div");

    // Reference: uninterrupted flow, no checkpointing at all.
    BespokeFlow cold(fastOpts());
    EXPECT_FALSE(cold.checkpoints().enabled());
    BespokeDesign ref = cold.tailor(w);

    // A run that is killed after the analysis stage: only the analysis
    // artifact lands in the store.
    {
        BespokeFlow partial(fastOpts(dir));
        ASSERT_TRUE(partial.checkpoints().enabled());
        AnalysisResult r = partial.analyze(w);
        ASSERT_TRUE(r.completed);
        EXPECT_EQ(partial.checkpoints().hits(), 0u);
        EXPECT_EQ(partial.checkpoints().misses(), 1u);
    }
    EXPECT_EQ(fileCount(dir), 1u);
    stageFile(dir, "analysis");

    // Resume: the analysis stage loads, cut + measure run and are
    // saved. The result matches the uninterrupted flow bit for bit.
    {
        BespokeFlow resumed(fastOpts(dir));
        BespokeDesign d = resumed.tailor(w);
        EXPECT_EQ(resumed.checkpoints().hits(), 1u);
        EXPECT_EQ(resumed.checkpoints().misses(), 2u);
        expectSameDesign(ref, d);
    }
    EXPECT_EQ(fileCount(dir), 3u);
    stageFile(dir, "design");
    stageFile(dir, "metrics");

    // Repeat: every stage short-circuits, nothing recomputes.
    {
        BespokeFlow warm(fastOpts(dir));
        BespokeDesign d = warm.tailor(w);
        EXPECT_EQ(warm.checkpoints().hits(), 3u);
        EXPECT_EQ(warm.checkpoints().misses(), 0u);
        expectSameDesign(ref, d);
    }
    EXPECT_EQ(fileCount(dir), 3u);

    fs::remove_all(dir);
}

TEST(Checkpoint, CorruptArtifactsAreRecomputedNotTrusted)
{
    std::string dir = freshDir("ckpt_corrupt");
    const Workload &w = workloadByName("div");

    BespokeFlow seeder(fastOpts(dir));
    BespokeDesign ref = seeder.tailor(w);

    // Truncated design artifact: unparseable -> miss -> recompute.
    std::string design_path = stageFile(dir, "design");
    std::string text;
    {
        std::ifstream in(design_path, std::ios::binary);
        text.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out(design_path, std::ios::binary);
        out << text.substr(0, text.size() / 2);
    }
    {
        BespokeFlow f(fastOpts(dir));
        BespokeDesign d = f.tailor(w);
        expectSameDesign(ref, d);
        EXPECT_GE(f.checkpoints().misses(), 1u);
    }

    // Valid JSON, wrong shape: deserializer rejects, flow recomputes.
    {
        std::ofstream out(design_path, std::ios::binary);
        out << "{\"format\": \"bespoke-checkpoint\", \"version\": 1, "
               "\"stage\": \"design\"}\n";
    }
    {
        BespokeFlow f(fastOpts(dir));
        BespokeDesign d = f.tailor(w);
        expectSameDesign(ref, d);
    }

    // A design artifact whose embedded netlist was edited fails the
    // content-hash check inside netlistFromJson and is recomputed.
    {
        size_t pos = text.find("\"alu\"");
        if (pos != std::string::npos) {
            std::string tampered = text;
            tampered.replace(pos, 5, "\"sfr\"");
            std::ofstream out(design_path, std::ios::binary);
            out << tampered;
            BespokeFlow f(fastOpts(dir));
            BespokeDesign d = f.tailor(w);
            expectSameDesign(ref, d);
        }
    }

    fs::remove_all(dir);
}

TEST(Checkpoint, KeysTrackContentNotNames)
{
    const Workload &a = workloadByName("div");
    const Workload &b = workloadByName("mult");
    EXPECT_NE(hashProgram(a.assembleProgram()),
              hashProgram(b.assembleProgram()));
    EXPECT_EQ(hashProgram(a.assembleProgram()),
              hashProgram(a.assembleProgram()));

    AnalysisOptions ao;
    uint64_t base = hashAnalysisOptions(ao);
    ao.threads = 7;
    ao.simMode = GateSim::EvalMode::FullEval;
    // Engine and worker count do not affect results, so artifacts are
    // shared across them.
    EXPECT_EQ(hashAnalysisOptions(ao), base);
    ao.concreteVisits++;
    EXPECT_NE(hashAnalysisOptions(ao), base);

    FlowOptions fo;
    uint64_t fbase = hashFlowOptions(fo);
    fo.checkpointDir = "/somewhere/else";
    EXPECT_EQ(hashFlowOptions(fo), fbase);
    fo.powerSeed++;
    EXPECT_NE(hashFlowOptions(fo), fbase);
    fo = FlowOptions();
    fo.timing.x2LoadThreshold += 1.0;
    EXPECT_NE(hashFlowOptions(fo), fbase);
    fo = FlowOptions();
    fo.analysis.maxPaths++;
    EXPECT_NE(hashFlowOptions(fo), fbase);
}

TEST(Checkpoint, MetricsSerializationIsLossless)
{
    DesignMetrics m;
    m.gates = 12345;
    m.flops = 678;
    m.areaUm2 = 1.0 / 3.0;
    m.criticalPathPs = 9876.54321e-3;
    m.slackFraction = 0.1 + 0.2;  // famously not 0.3
    m.powerNominal = {1e-17, 2.0 / 7.0, 3.14159265358979312};
    m.vmin = 0.55000000000000004;
    m.powerAtVmin = {4.0 / 9.0, 5e300, 6e-300};

    // Through text, as the store writes it, not just the document tree.
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(metricsToJson(m).dump(1), doc, err))
        << err;
    DesignMetrics r;
    ASSERT_TRUE(metricsFromJson(doc, &r, &err)) << err;
    EXPECT_EQ(m.gates, r.gates);
    EXPECT_EQ(m.flops, r.flops);
    EXPECT_EQ(m.areaUm2, r.areaUm2);
    EXPECT_EQ(m.criticalPathPs, r.criticalPathPs);
    EXPECT_EQ(m.slackFraction, r.slackFraction);
    EXPECT_EQ(m.powerNominal.switchingUW, r.powerNominal.switchingUW);
    EXPECT_EQ(m.powerNominal.clockUW, r.powerNominal.clockUW);
    EXPECT_EQ(m.powerNominal.leakageUW, r.powerNominal.leakageUW);
    EXPECT_EQ(m.vmin, r.vmin);
    EXPECT_EQ(m.powerAtVmin.switchingUW, r.powerAtVmin.switchingUW);
    EXPECT_EQ(m.powerAtVmin.clockUW, r.powerAtVmin.clockUW);
    EXPECT_EQ(m.powerAtVmin.leakageUW, r.powerAtVmin.leakageUW);

    // Envelope checks: wrong stage rejected.
    ASSERT_TRUE(metricsFromJson(doc, &r, &err));
    JsonValue design = designToJson(Netlist(), CutStats{});
    EXPECT_FALSE(metricsFromJson(design, &r, &err));
    EXPECT_NE(err.find("stage"), std::string::npos);
}

TEST(Checkpoint, AnalysisArtifactValidation)
{
    Netlist nl;
    GateId a = nl.addInput("a");
    GateId b = nl.addInput("b");
    GateId n = nl.addGate(CellType::NAND2, Module::Alu, a, b);
    nl.addOutput("y", n);

    AnalysisResult r;
    r.activity = std::make_unique<ActivityTracker>(nl);
    std::vector<uint8_t> init(nl.size(),
                              static_cast<uint8_t>(Logic::Zero));
    std::vector<uint8_t> tog(nl.size(), 0);
    init[n] = static_cast<uint8_t>(Logic::X);
    tog[n] = 1;
    r.activity->restore(init, tog);
    r.completed = true;
    r.pathsExplored = 3;
    r.cyclesSimulated = 99;
    r.workerStats.push_back({3, 99});

    JsonValue doc = analysisToJson(r);
    AnalysisResult back;
    std::string err;
    ASSERT_TRUE(analysisFromJson(doc, nl, &back, &err)) << err;
    EXPECT_TRUE(back.completed);
    EXPECT_EQ(back.pathsExplored, 3u);
    EXPECT_EQ(back.cyclesSimulated, 99u);
    ASSERT_EQ(back.workerStats.size(), 1u);
    EXPECT_EQ(back.workerStats[0].cyclesSimulated, 99u);
    for (GateId i = 0; i < nl.size(); i++) {
        EXPECT_EQ(back.activity->toggled(i), r.activity->toggled(i));
        EXPECT_EQ(back.activity->initialValue(i),
                  r.activity->initialValue(i));
    }

    // Artifact for a different-sized netlist is rejected.
    Netlist bigger = nl;
    bigger.addGate(CellType::INV, Module::Alu, n);
    EXPECT_FALSE(analysisFromJson(doc, bigger, &back, &err));
    EXPECT_NE(err.find("-gate netlist"), std::string::npos);

    // An X initial value must be marked toggled.
    JsonValue bad = analysisToJson(r);
    std::string flags = bad.find("toggled")->asString();
    flags[n] = '0';
    bad.set("toggled", JsonValue::str(flags));
    EXPECT_FALSE(analysisFromJson(bad, nl, &back, &err));
    EXPECT_NE(err.find("not marked toggled"), std::string::npos);
}

/** Set an artifact's access time to a fixed epoch (for LRU ordering). */
void
setAtime(const std::string &path, time_t when)
{
    timespec times[2];
    times[0].tv_sec = when;
    times[0].tv_nsec = 0;
    times[1].tv_sec = 0;
    times[1].tv_nsec = UTIME_OMIT;
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0)
        << path;
}

TEST(Checkpoint, LruSweepEvictsColdestArtifacts)
{
    std::string dir = freshDir("ckpt_lru");

    // Four identical-size artifacts under an uncapped store.
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::str("bespoke-checkpoint"));
    doc.set("version", JsonValue::number(1));
    doc.set("stage", JsonValue::str("metrics"));
    doc.set("pad", JsonValue::str(std::string(256, 'p')));
    CheckpointStore seed(dir);
    for (uint64_t k = 1; k <= 4; k++)
        seed.save({k, k, k}, "metrics", doc);
    ASSERT_EQ(fileCount(dir), 4u);
    uint64_t size =
        fs::file_size(seed.path({1, 1, 1}, "metrics"));

    // Pin the LRU order explicitly: 2 is coldest, then 1, 3, 4.
    setAtime(seed.path({2, 2, 2}, "metrics"), 1000);
    setAtime(seed.path({1, 1, 1}, "metrics"), 2000);
    setAtime(seed.path({3, 3, 3}, "metrics"), 3000);
    setAtime(seed.path({4, 4, 4}, "metrics"), 4000);

    // A capped store that fits three artifacts (cap 3.5x): saving a
    // fifth sweeps the two coldest (2, then 1) to get down to 3*size.
    CheckpointStore capped(dir, 3 * size + size / 2);
    EXPECT_EQ(capped.maxBytes(), 3 * size + size / 2);
    capped.save({5, 5, 5}, "metrics", doc);
    EXPECT_EQ(capped.evictions(), 2u);
    EXPECT_EQ(fileCount(dir), 3u);
    EXPECT_FALSE(fs::exists(capped.path({2, 2, 2}, "metrics")));
    EXPECT_FALSE(fs::exists(capped.path({1, 1, 1}, "metrics")));
    EXPECT_TRUE(fs::exists(capped.path({3, 3, 3}, "metrics")));
    EXPECT_TRUE(fs::exists(capped.path({4, 4, 4}, "metrics")));
    EXPECT_TRUE(fs::exists(capped.path({5, 5, 5}, "metrics")));

    // A hit refreshes the artifact's access time: make 3 the coldest
    // on disk, then load it — 4 becomes the next eviction victim.
    setAtime(capped.path({3, 3, 3}, "metrics"), 5000);
    setAtime(capped.path({4, 4, 4}, "metrics"), 6000);
    setAtime(capped.path({5, 5, 5}, "metrics"), 7000);
    JsonValue loaded;
    ASSERT_TRUE(capped.load({3, 3, 3}, "metrics", &loaded));
    capped.save({6, 6, 6}, "metrics", doc);
    capped.save({7, 7, 7}, "metrics", doc);
    EXPECT_TRUE(fs::exists(capped.path({3, 3, 3}, "metrics")));
    EXPECT_FALSE(fs::exists(capped.path({4, 4, 4}, "metrics")));

    // The artifact just written is never evicted, even when it alone
    // exceeds the cap; everything else goes.
    CheckpointStore tiny(dir, size / 2);
    tiny.save({8, 8, 8}, "metrics", doc);
    EXPECT_EQ(fileCount(dir), 1u);
    EXPECT_TRUE(fs::exists(tiny.path({8, 8, 8}, "metrics")));

    // An uncapped store on the same directory never evicts.
    CheckpointStore uncapped(dir);
    for (uint64_t k = 10; k < 20; k++)
        uncapped.save({k, k, k}, "metrics", doc);
    EXPECT_EQ(uncapped.evictions(), 0u);
    EXPECT_EQ(fileCount(dir), 11u);

    fs::remove_all(dir);
}

TEST(Checkpoint, DisabledStoreIsInert)
{
    CheckpointStore store;
    EXPECT_FALSE(store.enabled());
    JsonValue doc;
    EXPECT_FALSE(store.load({1, 2, 3}, "analysis", &doc));
    store.save({1, 2, 3}, "analysis", JsonValue::object());
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 0u);
    // Disabled stores hand out empty stage locks: nothing to wait on.
    StageLock lock = store.lockStage({1, 2, 3}, "analysis");
    EXPECT_FALSE(lock.waited());
}

TEST(Checkpoint, ConcurrentSameKeySaversNeverTearAReader)
{
    // Two writers race atomic saves of the same artifact while a
    // reader loops loads. Writer-unique temp files mean every rename
    // publishes a complete document: the reader must never see a
    // missing, truncated, or interleaved file. (The old shared
    // `<final>.tmp` name tore exactly this pattern.)
    std::string dir = freshDir("concurrent_save");
    CheckpointStore store(dir);
    CheckpointKey key{7, 7, 7};
    JsonValue doc = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (int i = 0; i < 4000; i++)
        arr.push(JsonValue::number(i * 1.5));
    doc.set("payload", std::move(arr));
    const std::string want = doc.dump();
    store.save(key, "metrics", doc);

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    auto writer = [&] {
        while (!stop.load())
            store.save(key, "metrics", doc);
    };
    std::thread w1(writer), w2(writer);
    std::thread reader([&] {
        while (!stop.load()) {
            JsonValue out;
            if (!store.load(key, "metrics", &out) ||
                out.dump() != want)
                torn.fetch_add(1);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    w1.join();
    w2.join();
    reader.join();
    EXPECT_EQ(torn.load(), 0);

    // The racing renames must not leak temp files either.
    size_t tmps = 0;
    for (const auto &e : fs::directory_iterator(dir))
        tmps += e.path().filename().string().find(".tmp.") !=
                std::string::npos;
    EXPECT_EQ(tmps, 0u);
    fs::remove_all(dir);
}

TEST(Checkpoint, StageLockFirstRunnerComputesOthersWait)
{
    std::string dir = freshDir("stage_lock");
    auto coord = std::make_shared<CheckpointCoordinator>();
    // Two stores (two "jobs") sharing one coordinator: the in-flight
    // table spans stores while hit/miss counters stay per-store.
    CheckpointStore a(dir, 0, coord);
    CheckpointStore b(dir, 0, coord);
    CheckpointKey key{1, 2, 3};

    StageLock first = a.lockStage(key, "metrics");
    EXPECT_FALSE(first.waited());

    std::atomic<bool> granted{false};
    std::thread t([&] {
        StageLock second = b.lockStage(key, "metrics");
        EXPECT_TRUE(second.waited());
        granted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(granted.load());

    // A different artifact is never blocked.
    StageLock other = b.lockStage(key, "analysis");
    EXPECT_FALSE(other.waited());

    first.release();
    t.join();
    EXPECT_TRUE(granted.load());
    fs::remove_all(dir);
}

} // namespace
} // namespace bespoke
