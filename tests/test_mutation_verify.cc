/**
 * @file
 * Tests for the mutation engine, the mutant-support check, the oracle
 * power-gating evaluator, and the coverage-directed input generator.
 */

#include <gtest/gtest.h>

#include "src/bespoke/flow.hh"
#include "src/cpu/bsp430.hh"
#include "src/gating/power_gating.hh"
#include "src/mutation/mutation.hh"
#include "src/verify/coverage_gen.hh"

namespace bespoke
{
namespace
{

TEST(Mutation, GeneratesAllThreeTypes)
{
    const Workload &w = workloadByName("tea8");
    std::vector<Mutant> mutants = generateMutants(w);
    EXPECT_GT(mutants.size(), 10u);
    int count[3] = {};
    for (const Mutant &m : mutants)
        count[static_cast<int>(m.type)]++;
    // tea8's loop body is full of computation ops inside one loop.
    EXPECT_GT(count[static_cast<int>(MutantType::TypeII)], 5);
    EXPECT_GT(count[static_cast<int>(MutantType::TypeIII)], 0);
}

TEST(Mutation, MutantsAssembleAndDifferFromOriginal)
{
    const Workload &w = workloadByName("div");
    AsmProgram orig = w.assembleProgram();
    for (const Mutant &m : generateMutants(w)) {
        AsmProgram mp = m.workload.assembleProgram();
        EXPECT_NE(mp.rom, orig.rom)
            << m.workload.name << " did not change the binary";
        EXPECT_EQ(mp.rom.size(), orig.rom.size());
    }
}

TEST(Mutation, LoopConditionalsClassifiedAsTypeIII)
{
    const Workload &w = workloadByName("div");
    // div's only branches are its loop condition(s).
    for (const Mutant &m : generateMutants(w)) {
        if (m.from[0] == 'j') {
            EXPECT_EQ(m.type, MutantType::TypeIII) << m.from;
        }
    }
}

TEST(Mutation, SupportIsReflexiveAndMonotone)
{
    FlowOptions opts;
    BespokeFlow flow(opts);
    const Workload &w = workloadByName("binSearch");
    AnalysisResult base = flow.analyze(w);

    // An application always supports itself.
    EXPECT_TRUE(mutantSupported(*base.activity, *base.activity));

    // A union design supports both constituents.
    AnalysisResult other = flow.analyze(workloadByName("div"));
    ActivityTracker merged = *base.activity;
    merged.mergeFrom(*other.activity);
    EXPECT_TRUE(mutantSupported(merged, *base.activity));
    EXPECT_TRUE(mutantSupported(merged, *other.activity));
}

TEST(PowerGating, OracleSavingsBoundedAndModulesIdle)
{
    Netlist nl = buildBsp430();
    sizeForLoads(nl);
    const Workload &w = workloadByName("binSearch");
    GatingResult g = evaluateOracleGating(nl, w, 1, 9);
    EXPECT_GT(g.baselineUW, 0.0);
    EXPECT_GE(g.savingsPercent(), 0.0);
    EXPECT_LT(g.savingsPercent(), 60.0);
    // binSearch never touches the multiplier: its domain idles ~100%.
    EXPECT_GT(g.idleFraction[static_cast<int>(Module::Mult)], 0.95);
    // The frontend is busy nearly every cycle.
    EXPECT_LT(g.idleFraction[static_cast<int>(Module::Frontend)], 0.3);
}

TEST(CoverageGen, CoversLinesAndBranches)
{
    const Workload &w = workloadByName("binSearch");
    CoverageInputs cov = generateCoverageInputs(w, 64, 8);
    EXPECT_GE(cov.inputs.size(), 2u);
    EXPECT_GT(cov.linePct, 90.0);
    EXPECT_GT(cov.branchPct, 90.0);
    EXPECT_GT(cov.branchDirPct, 60.0);
}

TEST(CoverageGen, StraightLineNeedsOneInput)
{
    const Workload &w = workloadByName("mult");
    CoverageInputs cov = generateCoverageInputs(w, 64, 4);
    EXPECT_GE(cov.inputs.size(), 1u);
    EXPECT_EQ(cov.linePct, 100.0);
}

} // namespace
} // namespace bespoke
