/**
 * @file
 * Tests for the parallel path-exploration engine behind
 * analyzeActivity():
 *
 *  - threads=1 reproduces the pre-refactor serial engine bit for bit
 *    (path/cycle/fork/merge counters and the untoggled-cell count are
 *    pinned to values captured from the monolithic AnalysisEngine
 *    before the decomposition);
 *  - threads>1 yields the identical untoggled-cell set (the widening
 *    fixpoint is schedule-independent on these workloads);
 *  - exploration caps produce completed=false with a still-usable
 *    (conservative) tracker, on one thread and on many;
 *  - BESPOKE_ANALYSIS_THREADS overrides AnalysisOptions::threads;
 *  - the observability fields are internally consistent.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/util/worker_pool.hh"

namespace bespoke
{
namespace
{

const Netlist &
core()
{
    static Netlist nl = buildBsp430();
    return nl;
}

AnalysisResult
analyze(const char *workload, int threads, AnalysisOptions opts = {})
{
    opts.threads = threads;
    return analyzeActivity(core(), workloadByName(workload), opts);
}

/** Golden counters captured from the serial engine pre-decomposition. */
struct Golden
{
    const char *workload;
    uint64_t paths, cycles, forks, merges;
    size_t untoggled;
};

constexpr Golden kGolden[] = {
    {"div", 181, 2956, 90, 3, 3708},
    {"tHold", 385, 7837, 192, 44, 3537},
    {"rle", 279, 5959, 139, 24, 1424},
    {"binSearch", 65, 1269, 32, 0, 3747},
    {"intFilt", 1, 2265, 0, 0, 3101},
};

TEST(AnalysisParallel, SerialMatchesPreRefactorGolden)
{
    for (const Golden &g : kGolden) {
        SCOPED_TRACE(g.workload);
        AnalysisResult r = analyze(g.workload, 1);
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.pathsExplored, g.paths);
        EXPECT_EQ(r.cyclesSimulated, g.cycles);
        EXPECT_EQ(r.forks, g.forks);
        EXPECT_EQ(r.merges, g.merges);
        EXPECT_EQ(r.untoggledCells(), g.untoggled);
        EXPECT_EQ(r.threadsUsed, 1);
    }
}

TEST(AnalysisParallel, ThreadedMatchesSerialUntoggledSet)
{
    // tHold and rle exercise the widening tables the hardest (44 and
    // 24 merges); div is fork-heavy with almost no widening.
    for (const char *name : {"div", "tHold", "rle"}) {
        SCOPED_TRACE(name);
        AnalysisResult serial = analyze(name, 1);
        ASSERT_TRUE(serial.completed);
        for (int threads : {2, 8}) {
            SCOPED_TRACE(threads);
            AnalysisResult par = analyze(name, threads);
            ASSERT_TRUE(par.completed);
            EXPECT_EQ(par.threadsUsed, threads);
            for (GateId i = 0; i < core().size(); i++) {
                ASSERT_EQ(par.activity->toggled(i),
                          serial.activity->toggled(i))
                    << "gate " << i;
                if (!serial.activity->toggled(i)) {
                    // The proven constant must agree too.
                    ASSERT_EQ(par.activity->initialValue(i),
                              serial.activity->initialValue(i))
                        << "gate " << i;
                }
            }
        }
    }
}

TEST(AnalysisParallel, LaneBatchedMatchesSerialUntoggledSet)
{
    // The 64-lane bit-plane engine (AnalysisOptions::laneWidth) takes
    // a different schedule through the widening tables, so the
    // path/cycle counters legitimately differ from the serial golden
    // values — but the toggle fixpoint must be identical, alone and
    // combined with worker threads.
    for (const char *name : {"div", "tHold", "rle", "binSearch"}) {
        SCOPED_TRACE(name);
        AnalysisResult serial = analyze(name, 1);
        ASSERT_TRUE(serial.completed);
        for (int threads : {1, 4}) {
            SCOPED_TRACE(threads);
            AnalysisOptions opts;
            opts.laneWidth = 64;
            AnalysisResult lane = analyze(name, threads, opts);
            ASSERT_TRUE(lane.completed);
            EXPECT_EQ(lane.lanesUsed, 64);
            EXPECT_GT(lane.gatesEvaluated, 0u);
            for (GateId i = 0; i < core().size(); i++) {
                ASSERT_EQ(lane.activity->toggled(i),
                          serial.activity->toggled(i))
                    << "gate " << i;
                if (!serial.activity->toggled(i)) {
                    ASSERT_EQ(lane.activity->initialValue(i),
                              serial.activity->initialValue(i))
                        << "gate " << i;
                }
            }
        }
    }
}

TEST(AnalysisParallel, LaneEnvVarOverridesLaneWidth)
{
    AnalysisOptions opts;
    opts.laneWidth = 1;

    ::setenv("BESPOKE_ANALYSIS_LANES", "64", 1);
    EXPECT_EQ(resolveAnalysisLanes(opts), 64);
    AnalysisResult r =
        analyzeActivity(core(), workloadByName("binSearch"), opts);
    EXPECT_EQ(r.lanesUsed, 64);

    // Out-of-range values clamp; garbage is ignored with a warning.
    ::setenv("BESPOKE_ANALYSIS_LANES", "1000", 1);
    EXPECT_EQ(resolveAnalysisLanes(opts), 64);
    ::setenv("BESPOKE_ANALYSIS_LANES", "wide", 1);
    EXPECT_EQ(resolveAnalysisLanes(opts), 1);

    ::unsetenv("BESPOKE_ANALYSIS_LANES");
    opts.laneWidth = 7;
    EXPECT_EQ(resolveAnalysisLanes(opts), 7);
}

TEST(AnalysisParallel, PathCapYieldsIncompleteButUsableResult)
{
    AnalysisResult full = analyze("div", 1);
    for (int threads : {1, 4}) {
        SCOPED_TRACE(threads);
        AnalysisOptions opts;
        opts.maxPaths = 20;  // div needs 181
        AnalysisResult r = analyze("div", threads, opts);
        EXPECT_FALSE(r.completed);
        EXPECT_LE(r.pathsExplored, opts.maxPaths);
        ASSERT_NE(r.activity, nullptr);
        EXPECT_TRUE(r.activity->initialCaptured());
        // The partial result is conservative: it can only claim MORE
        // untoggled gates than the full exploration, never a gate the
        // full exploration proves toggleable... in the other direction:
        // anything the capped run saw toggle really does toggle.
        for (GateId i = 0; i < core().size(); i++) {
            if (r.activity->toggled(i)) {
                EXPECT_TRUE(full.activity->toggled(i)) << "gate " << i;
            }
        }
        EXPECT_GE(r.untoggledCells(), full.untoggledCells());
    }
}

TEST(AnalysisParallel, CycleCapYieldsIncompleteResult)
{
    for (int threads : {1, 4}) {
        SCOPED_TRACE(threads);
        AnalysisOptions opts;
        opts.maxTotalCycles = 500;  // div needs 2956
        AnalysisResult r = analyze("div", threads, opts);
        EXPECT_FALSE(r.completed);
        ASSERT_NE(r.activity, nullptr);
        EXPECT_TRUE(r.activity->initialCaptured());
    }
}

TEST(AnalysisParallel, EnvVarOverridesThreadCount)
{
    AnalysisOptions opts;
    opts.threads = 1;

    ::setenv("BESPOKE_ANALYSIS_THREADS", "3", 1);
    EXPECT_EQ(resolveAnalysisThreads(opts), 3);
    AnalysisResult r =
        analyzeActivity(core(), workloadByName("binSearch"), opts);
    EXPECT_EQ(r.threadsUsed, 3);
    EXPECT_EQ(r.workerStats.size(), 3u);

    // 0 means "all cores", from the env var just like from the field.
    ::setenv("BESPOKE_ANALYSIS_THREADS", "0", 1);
    EXPECT_EQ(resolveAnalysisThreads(opts),
              WorkerPool::defaultThreadCount());

    // Garbage is ignored with a warning; the field wins.
    ::setenv("BESPOKE_ANALYSIS_THREADS", "lots", 1);
    EXPECT_EQ(resolveAnalysisThreads(opts), 1);

    ::unsetenv("BESPOKE_ANALYSIS_THREADS");
    EXPECT_EQ(resolveAnalysisThreads(opts), 1);
}

TEST(AnalysisParallel, ObservabilityFieldsAreConsistent)
{
    for (int threads : {1, 2}) {
        SCOPED_TRACE(threads);
        AnalysisResult r = analyze("div", threads);
        EXPECT_EQ(r.threadsUsed, threads);
        EXPECT_GT(r.frontierPeak, 0u);
        EXPECT_GT(r.maxForkDepth, 0u);  // div forks 90 times
        ASSERT_EQ(r.workerStats.size(),
                  static_cast<size_t>(threads));
        uint64_t paths = 0, cycles = 0;
        for (const WorkerStats &ws : r.workerStats) {
            paths += ws.pathsExplored;
            cycles += ws.cyclesSimulated;
        }
        EXPECT_EQ(paths, r.pathsExplored);
        EXPECT_EQ(cycles, r.cyclesSimulated);
    }
}

} // namespace
} // namespace bespoke
