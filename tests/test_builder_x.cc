/**
 * @file
 * X-monotonicity property tests for the NetBuilder datapath blocks.
 *
 * The paper's input-independent activity analysis (Sec. 3.1) rests on
 * the soundness of three-valued evaluation: if a symbolic run with some
 * inputs X produces a *known* output bit, then every concretization of
 * those X bits must produce that same value. Were a builder block (or
 * the cell evaluator under it) to violate this, the analysis could
 * prove a gate constant that a real input toggles, and cutting it
 * would corrupt the bespoke design.
 *
 * These tests drive random input words with randomly X-ed bits through
 * each datapath block and check every fully-known output bit against
 * randomized concretizations of the X bits.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

/**
 * Combinational harness whose inputs are driven from symbolic words
 * and whose outputs are read back as symbolic words (X bits allowed).
 */
class XHarness
{
  public:
    XHarness() : builder_(netlist_) {}

    NetBuilder &b() { return builder_; }

    Bus
    in(const std::string &name, int width)
    {
        Bus bus = builder_.inputBus(name, width);
        inputs_.push_back(bus);
        return bus;
    }

    void
    out(const std::string &name, const Bus &bus)
    {
        builder_.outputBus(name, bus);
        outputs_[name] = bus;
    }

    void outBit(const std::string &name, GateId g) { out(name, Bus{g}); }

    size_t numInputs() const { return inputs_.size(); }
    int inputWidth(size_t i) const
    {
        return static_cast<int>(inputs_[i].size());
    }
    const std::map<std::string, Bus> &outputs() const { return outputs_; }

    /** Apply input words (in declaration order) and evaluate. */
    void
    eval(const std::vector<SWord> &values)
    {
        if (!sim_) {
            netlist_.validate();
            sim_ = std::make_unique<GateSim>(netlist_);
        }
        sim_->reset();
        ASSERT_EQ(values.size(), inputs_.size());
        for (size_t i = 0; i < values.size(); i++)
            sim_->setInputWord(inputs_[i], values[i]);
        sim_->evalComb();
    }

    SWord
    word(const std::string &name)
    {
        return sim_->busWord(outputs_.at(name));
    }

  private:
    Netlist netlist_;
    NetBuilder builder_;
    std::vector<Bus> inputs_;
    std::map<std::string, Bus> outputs_;
    std::unique_ptr<GateSim> sim_;
};

/**
 * Property check: for random symbolic stimulus, every known output bit
 * of the symbolic evaluation must match every (sampled) concretization
 * of the X input bits.
 */
void
checkXMonotone(XHarness &h, Rng &rng, int trials, int concretizations)
{
    for (int t = 0; t < trials; t++) {
        // Random values with random X-ed bits. Bias toward mostly-known
        // words so outputs frequently have known bits worth checking.
        std::vector<SWord> sym;
        for (size_t i = 0; i < h.numInputs(); i++) {
            uint16_t known = rng.word() | rng.word();
            if (rng.chance(1, 8))
                known = 0xffff;
            sym.push_back(SWord(rng.word(), known));
        }
        h.eval(sym);
        std::map<std::string, SWord> symout;
        for (auto &[name, bus] : h.outputs())
            symout[name] = h.word(name);

        for (int c = 0; c < concretizations; c++) {
            std::vector<SWord> conc;
            for (SWord s : sym) {
                uint16_t fill = rng.word();
                conc.push_back(SWord::of(
                    static_cast<uint16_t>((s.val & s.known) |
                                          (fill & ~s.known))));
            }
            h.eval(conc);
            for (auto &[name, bus] : h.outputs()) {
                SWord cw = h.word(name);
                SWord sw = symout[name];
                for (int i = 0;
                     i < static_cast<int>(bus.size()); i++) {
                    ASSERT_TRUE(isKnown(cw.bit(i)))
                        << name << "[" << i
                        << "] X under concrete inputs";
                    if (isKnown(sw.bit(i))) {
                        ASSERT_EQ(sw.bit(i), cw.bit(i))
                            << name << "[" << i << "] trial " << t
                            << ": symbolic claims a constant that a "
                            << "concretization contradicts";
                    }
                }
            }
        }
    }
}

class XMonotone : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(XMonotone, AdderSubtractorIncrementer)
{
    XHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult add = h.b().adder(a, b, h.b().tie0());
    h.out("sum", add.sum);
    h.out("carries", add.carries);
    AddResult sub = h.b().subtractor(a, b);
    h.out("diff", sub.sum);
    h.outBit("noborrow", sub.carryOut);
    h.out("inc", h.b().incrementer(a).sum);

    Rng rng(GetParam());
    checkXMonotone(h, rng, 30, 8);
}

TEST_P(XMonotone, LogicMasksAndShifts)
{
    XHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    Bus en = h.in("en", 1);
    h.out("and", h.b().andBus(a, b));
    h.out("or", h.b().orBus(a, b));
    h.out("xor", h.b().xorBus(a, b));
    h.out("inv", h.b().invBus(a));
    h.out("mask", h.b().maskBus(a, en[0]));
    h.out("shr", h.b().shiftRight1(a, en[0]));
    h.out("shl", h.b().shiftLeft1(a, en[0]));

    Rng rng(GetParam() + 100);
    checkXMonotone(h, rng, 30, 8);
}

TEST_P(XMonotone, ComparatorsAndReductions)
{
    XHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    h.outBit("eq", h.b().equal(a, b));
    h.outBit("eqc", h.b().equalsConst(a, 0x5a5a));
    h.outBit("zero", h.b().isZero(a));
    h.outBit("ror", h.b().reduceOr(a));
    h.outBit("rand", h.b().reduceAnd(a));

    Rng rng(GetParam() + 200);
    checkXMonotone(h, rng, 40, 8);
}

TEST_P(XMonotone, MuxTreeAndDecoder)
{
    XHarness h;
    Bus sel = h.in("sel", 2);
    std::vector<Bus> choices;
    // Non-power-of-two choice count: the odd tail must stay sound too.
    for (int i = 0; i < 3; i++)
        choices.push_back(h.in("c" + std::to_string(i), 8));
    h.out("mux", h.b().muxTree(sel, choices));
    h.out("dec", h.b().decoder(sel));
    h.out("mux2", h.b().muxBus(sel[0], choices[0], choices[1]));

    Rng rng(GetParam() + 300);
    // sel values 3 (out of range) select an arbitrary-but-fixed choice;
    // X-monotonicity must hold regardless, so no masking of sel here.
    checkXMonotone(h, rng, 40, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XMonotone,
                         ::testing::Values(21u, 22u, 23u));

/**
 * Directed case: an X operand bit whose carry cannot propagate must
 * not poison higher sum bits (the adder is bitwise, so known-0 carry
 * paths stay known). Conversely an X in the low bit with a carry chain
 * may legitimately X-out everything above — but never produce a wrong
 * known bit, which checkXMonotone already covers. Here we pin the
 * useful direction: known bits survive where structure allows.
 */
TEST(XMonotoneDirected, KnownBitsSurviveIndependentLanes)
{
    XHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    h.out("xor", h.b().xorBus(a, b));
    // a = all X, b known: XOR lanes are independent, so no bit of the
    // result may be known (any known bit would be an unsound constant).
    h.eval({SWord::allX(), SWord::of(0x00ff)});
    SWord x = h.word("xor");
    EXPECT_EQ(x.known, 0u);

    // Fully known inputs stay fully known.
    h.eval({SWord::of(0x1234), SWord::of(0x00ff)});
    x = h.word("xor");
    EXPECT_TRUE(x.fullyKnown());
    EXPECT_EQ(x.val, 0x1234 ^ 0x00ff);
}

/** AND with a known-0 mask must yield known zeros even for X data. */
TEST(XMonotoneDirected, ControllingValuesDefeatX)
{
    XHarness h;
    Bus a = h.in("a", 16);
    Bus en = h.in("en", 1);
    h.out("mask", h.b().maskBus(a, en[0]));
    h.eval({SWord::allX(), SWord::of(0)});
    SWord m = h.word("mask");
    EXPECT_TRUE(m.fullyKnown());
    EXPECT_EQ(m.val, 0u);
}

} // namespace
} // namespace bespoke
