/**
 * @file
 * SAT miter equivalence prover: self-equivalence must fold away at
 * encode time, a genuinely tailored design must prove Equivalent, a
 * corrupted design must be caught with a concretely confirmed witness
 * (never a bare abstract model), and the exported DIMACS/SMT2 text of
 * the identical miter formula must be well-formed and consistent with
 * the container's own counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/cnf.hh"
#include "src/sat/equiv_prover.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

/** Corrupt a design by inverting the driver of one OUTPUT port. */
Netlist
invertOutput(const Netlist &nl, const std::string &port)
{
    Netlist bad = nl;
    GateId out = bad.port(port);
    GateId inv = bad.addGate(CellType::INV, Module::Glue,
                             bad.gate(out).in[0]);
    bad.setFanin(out, 0, inv);
    bad.validate();
    return bad;
}

TEST(SatEquiv, SelfEquivalenceFoldsAtEncodeTime)
{
    Netlist core = buildBsp430();
    AsmProgram prog = workloadByName("mult").assembleProgram();
    sat::SatEquivOptions opts;
    opts.depth = 8;
    sat::SatEquivResult res =
        sat::proveEquivalentSat(core, core, prog, opts);
    EXPECT_EQ(res.verdict, sat::SatEquivVerdict::Equivalent);
    // Identical designs share every encoded node: the miter never
    // reaches the solver.
    EXPECT_NE(res.detail.find("folded"), std::string::npos);
}

TEST(SatEquiv, TailoredDesignProvesEquivalent)
{
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();
    AnalysisOptions aopts;
    AnalysisResult ar = analyzeActivity(core, app, aopts);
    ASSERT_TRUE(ar.completed);
    PassPipelineOptions popts;
    PassEnv env;
    Netlist bespoke_nl =
        runTailorPipeline(core, ar.activity.get(), popts, env);

    sat::SatEquivOptions opts;
    opts.depth = 24;
    sat::SatEquivResult res =
        sat::proveEquivalentSat(core, bespoke_nl, prog, opts);
    EXPECT_EQ(res.verdict, sat::SatEquivVerdict::Equivalent)
        << res.detail;
    EXPECT_GT(res.vars, 0u);
}

TEST(SatEquiv, CorruptedDesignRefutedWithConfirmedWitness)
{
    Netlist core = buildBsp430();
    AsmProgram prog = workloadByName("mult").assembleProgram();
    // Find an output port whose inversion is concretely observable;
    // gpio_out bits are register-driven (known from reset), so the
    // first one always is.
    std::vector<std::string> outs;
    for (const auto &[name, id] : core.ports()) {
        if (core.gate(id).type == CellType::OUTPUT)
            outs.push_back(name);
    }
    ASSERT_FALSE(outs.empty());
    std::sort(outs.begin(), outs.end());
    bool caught = false;
    for (const std::string &port : outs) {
        Netlist bad = invertOutput(core, port);
        sat::SatEquivOptions opts;
        opts.depth = 8;
        sat::SatEquivResult res =
            sat::proveEquivalentSat(core, bad, prog, opts);
        ASSERT_NE(res.verdict, sat::SatEquivVerdict::Equivalent)
            << "inverted '" << port << "' proved equivalent";
        if (res.verdict == sat::SatEquivVerdict::NotEquivalent) {
            // The verdict must rest on a concrete replay, and the
            // witness must be well-formed for the requested bound.
            EXPECT_TRUE(res.witnessConfirmed);
            EXPECT_EQ(res.witnessGpio.size(),
                      static_cast<size_t>(opts.depth));
            EXPECT_NE(res.detail.find("witness replay"),
                      std::string::npos);
            caught = true;
            break;
        }
        // Unknown is tolerable for an output the three-valued replay
        // cannot pin down (X never confirms a mismatch) — but at
        // least one port must be caught concretely.
    }
    EXPECT_TRUE(caught)
        << "no output inversion produced a confirmed witness";
}

TEST(SatEquiv, DimacsAndSmt2ExportsAreWellFormed)
{
    Netlist core = buildBsp430();
    AsmProgram prog = workloadByName("mult").assembleProgram();
    Netlist bad = invertOutput(core, [&] {
        std::vector<std::string> outs;
        for (const auto &[name, id] : core.ports())
            if (core.gate(id).type == CellType::OUTPUT)
                outs.push_back(name);
        std::sort(outs.begin(), outs.end());
        return outs.front();
    }());

    sat::Cnf cnf;
    sat::UnrollOptions uo;
    uo.fromReset = true;
    sat::SocUnroller un(core, prog, cnf, uo);
    un.attachFollower(bad);
    sat::Lit miter = sat::encodeMiter(un, core, bad, 4);
    ASSERT_NE(miter, sat::kFalse);
    cnf.unit(miter);

    std::ostringstream dimacs;
    cnf.writeDimacs(dimacs);
    std::istringstream in(dimacs.str());
    std::string line;
    size_t clause_lines = 0;
    bool header = false;
    size_t hdr_vars = 0, hdr_clauses = 0;
    long long max_var = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        if (line[0] == 'p') {
            ASSERT_FALSE(header) << "duplicate DIMACS header";
            header = true;
            std::istringstream hs(line);
            std::string p, fmt;
            hs >> p >> fmt >> hdr_vars >> hdr_clauses;
            EXPECT_EQ(fmt, "cnf");
            continue;
        }
        ASSERT_TRUE(header) << "clause before header";
        std::istringstream cs(line);
        long long litv = 0, last = -1;
        while (cs >> litv) {
            last = litv;
            if (litv < 0)
                litv = -litv;
            max_var = std::max(max_var, litv);
        }
        EXPECT_EQ(last, 0) << "clause line not zero-terminated";
        clause_lines++;
    }
    ASSERT_TRUE(header);
    EXPECT_EQ(clause_lines, hdr_clauses);
    EXPECT_EQ(clause_lines, cnf.numClauses());
    EXPECT_LE(static_cast<size_t>(max_var), hdr_vars);
    EXPECT_EQ(hdr_vars, cnf.numVars());

    std::ostringstream smt;
    cnf.writeSmt2(smt);
    const std::string s = smt.str();
    EXPECT_NE(s.find("(check-sat)"), std::string::npos);
    EXPECT_NE(s.find("declare-const"), std::string::npos);
    EXPECT_NE(s.find("(assert"), std::string::npos);
}

} // namespace
} // namespace bespoke
