/**
 * @file
 * Unit tests for the golden-model ISS: arithmetic semantics, flags,
 * addressing modes, control flow, peripherals, interrupts.
 */

#include <deque>

#include <gtest/gtest.h>

#include "src/isa/assembler.hh"
#include "src/iss/iss.hh"

namespace bespoke
{
namespace
{

/** Assemble a body placed at 0xf000 with reset vector wired up. */
AsmProgram
prog(const std::string &body)
{
    return assemble(std::string("        .org 0xf000\n") + body +
                    "\n        .org 0xfffe\n        .word 0xf000\n");
}

/** Run to halt and return the ISS for inspection. */
Iss
runToHalt(const std::string &body, uint16_t gpio_in = 0)
{
    static std::deque<AsmProgram> keep;  // stable addresses, kept alive
    keep.push_back(prog(body));
    Iss iss(keep.back());
    iss.setGpioIn(gpio_in);
    EXPECT_EQ(iss.run(), StepResult::Halted);
    return iss;
}

TEST(Iss, MovAndArithmetic)
{
    Iss iss = runToHalt(R"(
        mov #0x1234, r5
        mov r5, r6
        add #1, r6
        sub #4, r6
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0x1234);
    EXPECT_EQ(iss.reg(6), 0x1231);
}

TEST(Iss, AddCarryAndOverflowFlags)
{
    Iss iss = runToHalt(R"(
        mov #0xffff, r5
        add #1, r5          ; -> 0, C=1, Z=1
        mov sr, r6
        mov #0x7fff, r7
        add #1, r7          ; -> 0x8000, V=1, N=1
        mov sr, r8
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0);
    EXPECT_TRUE(iss.reg(6) & kFlagC);
    EXPECT_TRUE(iss.reg(6) & kFlagZ);
    EXPECT_FALSE(iss.reg(6) & kFlagN);
    EXPECT_EQ(iss.reg(7), 0x8000);
    EXPECT_TRUE(iss.reg(8) & kFlagV);
    EXPECT_TRUE(iss.reg(8) & kFlagN);
}

TEST(Iss, SubAndCompare)
{
    Iss iss = runToHalt(R"(
        mov #10, r5
        sub #3, r5         ; 7, C=1 (no borrow)
        mov sr, r6
        mov #3, r7
        sub #10, r7        ; -7, C=0 (borrow)
        mov sr, r8
        mov #5, r9
        cmp #5, r9         ; Z=1, dst unchanged
        mov sr, r10
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 7);
    EXPECT_TRUE(iss.reg(6) & kFlagC);
    EXPECT_EQ(iss.reg(7), 0xfff9);
    EXPECT_FALSE(iss.reg(8) & kFlagC);
    EXPECT_EQ(iss.reg(9), 5);
    EXPECT_TRUE(iss.reg(10) & kFlagZ);
}

TEST(Iss, LogicOps)
{
    Iss iss = runToHalt(R"(
        mov #0x0f0f, r5
        and #0x00ff, r5    ; 0x000f
        mov #0x0f0f, r6
        bis #0xf000, r6    ; 0xff0f
        mov #0x0f0f, r7
        bic #0x000f, r7    ; 0x0f00
        mov #0x0f0f, r8
        xor #0xffff, r8    ; 0xf0f0
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0x000f);
    EXPECT_EQ(iss.reg(6), 0xff0f);
    EXPECT_EQ(iss.reg(7), 0x0f00);
    EXPECT_EQ(iss.reg(8), 0xf0f0);
}

TEST(Iss, ByteOpsClearUpperByteOnRegister)
{
    Iss iss = runToHalt(R"(
        mov #0x1234, r5
        mov.b #0xff, r5    ; -> 0x00ff
        mov #0xff80, r6
        add.b #1, r6       ; -> 0x0081 (byte add)
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0x00ff);
    EXPECT_EQ(iss.reg(6), 0x0081);
}

TEST(Iss, MemoryAddressing)
{
    Iss iss = runToHalt(R"(
        mov #0x0280, sp
        mov #0x1111, &0x0210
        mov #0x0210, r4
        mov @r4, r5        ; 0x1111
        mov #0x2222, 2(r4)
        mov 2(r4), r6      ; 0x2222
        mov @r4+, r7       ; 0x1111, r4 -> 0x0212
        mov @r4+, r8       ; 0x2222, r4 -> 0x0214
        mov.b #0xab, &0x0220
        mov.b &0x0220, r9
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0x1111);
    EXPECT_EQ(iss.reg(6), 0x2222);
    EXPECT_EQ(iss.reg(7), 0x1111);
    EXPECT_EQ(iss.reg(8), 0x2222);
    EXPECT_EQ(iss.reg(4), 0x0214);
    EXPECT_EQ(iss.reg(9), 0x00ab);
    EXPECT_EQ(iss.readWord(0x0210), 0x1111);
}

TEST(Iss, PushPopCallRet)
{
    Iss iss = runToHalt(R"(
        mov #0x0280, sp
        mov #0xbeef, r5
        push r5
        clr r5
        pop r5
        call #sub1
        jmp halt
sub1:   mov #0x55, r6
        ret
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0xbeef);
    EXPECT_EQ(iss.reg(6), 0x55);
    EXPECT_EQ(iss.reg(kRegSP), 0x0280);
}

TEST(Iss, ShiftsAndByteSwap)
{
    Iss iss = runToHalt(R"(
        mov #0x8003, r5
        rra r5             ; 0xc001, C=1
        mov #0x8000, r6
        setc
        rrc r6             ; 0xc000, C=0
        mov #0x1234, r7
        swpb r7            ; 0x3412
        mov #0x0080, r8
        sxt r8             ; 0xff80
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(5), 0xc001);
    EXPECT_EQ(iss.reg(6), 0xc000);
    EXPECT_EQ(iss.reg(7), 0x3412);
    EXPECT_EQ(iss.reg(8), 0xff80);
}

TEST(Iss, ConditionalJumps)
{
    Iss iss = runToHalt(R"(
        mov #5, r5
        mov #0, r6
loop:   add r5, r6
        dec r5
        jnz loop
        ; r6 = 5+4+3+2+1 = 15
        mov #0x8000, r7
        tst r7
        jge pos
        mov #1, r8         ; negative path
        jmp done
pos:    mov #2, r8
done:
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(6), 15);
    EXPECT_EQ(iss.reg(8), 1);
}

TEST(Iss, GpioAndOutputTrace)
{
    Iss iss = runToHalt(R"(
        mov &0x0000, r5    ; read P1IN
        add #1, r5
        mov r5, &0x0002    ; write P1OUT
        mov #0x7777, &0x0002
halt:   jmp halt
    )",
                        0x1233);
    EXPECT_EQ(iss.gpioOut(), 0x7777);
    ASSERT_EQ(iss.outputTrace().size(), 2u);
    EXPECT_EQ(iss.outputTrace()[0].value, 0x1234);
    EXPECT_EQ(iss.outputTrace()[1].value, 0x7777);
}

TEST(Iss, HardwareMultiplier)
{
    Iss iss = runToHalt(R"(
        mov #1234, &0x0130  ; MPY (unsigned)
        mov #5678, &0x0134  ; OP2 triggers
        mov &0x0136, r5     ; RESLO
        mov &0x0138, r6     ; RESHI
        mov #0xffff, &0x0132 ; MPYS = -1 (signed)
        mov #7, &0x0134
        mov &0x0136, r7     ; -7 low
        mov &0x0138, r8     ; -7 high (0xffff)
halt:   jmp halt
    )");
    uint32_t p = 1234u * 5678u;
    EXPECT_EQ(iss.reg(5), p & 0xffff);
    EXPECT_EQ(iss.reg(6), p >> 16);
    EXPECT_EQ(iss.reg(7), 0xfff9);
    EXPECT_EQ(iss.reg(8), 0xffff);
}

TEST(Iss, ExternalInterrupt)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
start:  mov #0x0280, sp
        mov #1, &0x0004    ; IE bit0
        eint
        mov #0, r5
wait:   inc r5
        cmp #100, r5
        jnz wait
halt:   jmp halt
isr:    mov #0xaa, r10
        reti
        .org 0xfff8
        .word isr
        .org 0xfffe
        .word start
    )");
    Iss iss(p);
    // Run a few instructions, then assert the IRQ line.
    for (int i = 0; i < 10; i++)
        iss.step();
    iss.raiseExternalIrq();
    EXPECT_EQ(iss.run(), StepResult::Halted);
    EXPECT_EQ(iss.reg(10), 0xaa);
    EXPECT_EQ(iss.reg(5), 100);
    // GIE restored by RETI.
    EXPECT_TRUE(iss.sr() & kFlagGIE);
}

TEST(Iss, DebugUnitWatchpointCounter)
{
    Iss iss = runToHalt(R"(
        mov #0x0240, &0x0032  ; DBGADDR = 0x0240
        mov #1, &0x0030       ; DBGCTL enable
        mov #0x1111, &0x0240  ; hit 1 (write)
        mov &0x0240, r5       ; hit 2 (read)
        mov #0x2222, &0x0242  ; miss
        mov &0x0030, r6       ; ctl | count<<8
        mov &0x0034, r7       ; captured data
halt:   jmp halt
    )");
    EXPECT_EQ(iss.reg(6) >> 8, 2);
    EXPECT_EQ(iss.reg(7), 0x1111);
}

TEST(Iss, CoverageTracking)
{
    Iss iss = runToHalt(R"(
        mov #2, r5
loop:   dec r5
        jnz loop
halt:   jmp halt
    )");
    // The jnz was both taken and not taken.
    ASSERT_EQ(iss.branchDirections().size(), 1u);
    auto dirs = iss.branchDirections().begin()->second;
    EXPECT_TRUE(dirs.first);
    EXPECT_TRUE(dirs.second);
    EXPECT_GE(iss.executedPCs().size(), 4u);
}

} // namespace
} // namespace bespoke
