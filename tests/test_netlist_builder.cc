/**
 * @file
 * Unit and property tests for the netlist graph and the structural
 * builder: datapath blocks are checked against uint16 arithmetic over
 * randomized operands (parameterized sweeps), and graph utilities
 * (levelize, fanouts, stats) are checked on known structures.
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

/** Evaluate a pure-combinational function netlist for given inputs. */
class CombHarness
{
  public:
    CombHarness() : builder_(netlist_) {}

    NetBuilder &b() { return builder_; }

    Bus
    in(const std::string &name, int width)
    {
        Bus bus = builder_.inputBus(name, width);
        inputs_.push_back(bus);
        return bus;
    }

    void
    out(const std::string &name, const Bus &bus)
    {
        builder_.outputBus(name, bus);
        outWidths_[name] = static_cast<int>(bus.size());
    }

    void
    outBit(const std::string &name, GateId g)
    {
        netlist_.addOutput(name, g);
        outWidths_[name] = 0;  // scalar
    }

    /** Apply input words (in declaration order) and evaluate. */
    void
    eval(const std::vector<uint16_t> &values)
    {
        if (!sim_) {
            netlist_.validate();
            sim_ = std::make_unique<GateSim>(netlist_);
        }
        sim_->reset();
        ASSERT_EQ(values.size(), inputs_.size());
        for (size_t i = 0; i < values.size(); i++)
            sim_->setInputWord(inputs_[i], SWord::of(values[i]));
        sim_->evalComb();
    }

    uint16_t
    word(const std::string &name)
    {
        SWord w = sim_->busWord(
            netlist_.bus(name, outWidths_.at(name)));
        EXPECT_TRUE(w.fullyKnown());
        return w.val;
    }

    bool
    bit(const std::string &name)
    {
        Logic v = sim_->value(netlist_.port(name));
        EXPECT_TRUE(isKnown(v));
        return knownValue(v);
    }

  private:
    Netlist netlist_;
    NetBuilder builder_;
    std::vector<Bus> inputs_;
    std::map<std::string, int> outWidths_;
    std::unique_ptr<GateSim> sim_;
};

class BuilderSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BuilderSweep, AdderMatchesUint16)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult r = h.b().adder(a, b, h.b().tie0());
    h.out("sum", r.sum);
    h.outBit("cout", r.carryOut);

    Rng rng(GetParam());
    for (int t = 0; t < 50; t++) {
        uint16_t x = rng.word(), y = rng.word();
        h.eval({x, y});
        uint32_t wide = static_cast<uint32_t>(x) + y;
        EXPECT_EQ(h.word("sum"), static_cast<uint16_t>(wide));
        EXPECT_EQ(h.bit("cout"), (wide >> 16) != 0);
    }
}

TEST_P(BuilderSweep, SubtractorMatchesUint16)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult r = h.b().subtractor(a, b);
    h.out("diff", r.sum);
    h.outBit("noborrow", r.carryOut);

    Rng rng(GetParam() + 1000);
    for (int t = 0; t < 50; t++) {
        uint16_t x = rng.word(), y = rng.word();
        h.eval({x, y});
        EXPECT_EQ(h.word("diff"), static_cast<uint16_t>(x - y));
        EXPECT_EQ(h.bit("noborrow"), x >= y);
    }
}

TEST_P(BuilderSweep, LogicBusesMatch)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    h.out("and", h.b().andBus(a, b));
    h.out("or", h.b().orBus(a, b));
    h.out("xor", h.b().xorBus(a, b));
    h.out("inv", h.b().invBus(a));

    Rng rng(GetParam() + 2000);
    for (int t = 0; t < 30; t++) {
        uint16_t x = rng.word(), y = rng.word();
        h.eval({x, y});
        EXPECT_EQ(h.word("and"), x & y);
        EXPECT_EQ(h.word("or"), x | y);
        EXPECT_EQ(h.word("xor"), x ^ y);
        EXPECT_EQ(h.word("inv"), static_cast<uint16_t>(~x));
    }
}

TEST_P(BuilderSweep, ComparatorsAndReductions)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    h.outBit("eq", h.b().equal(a, b));
    h.outBit("zero", h.b().isZero(a));
    h.outBit("eqc", h.b().equalsConst(a, 0x1234));
    h.outBit("ror", h.b().reduceOr(a));
    h.outBit("rand", h.b().reduceAnd(a));

    Rng rng(GetParam() + 3000);
    for (int t = 0; t < 30; t++) {
        uint16_t x = rng.word();
        uint16_t y = rng.chance(1, 3) ? x : rng.word();
        if (t == 0)
            x = 0;
        if (t == 1)
            x = 0xffff;
        if (t == 2)
            x = 0x1234;
        h.eval({x, y});
        EXPECT_EQ(h.bit("eq"), x == y);
        EXPECT_EQ(h.bit("zero"), x == 0);
        EXPECT_EQ(h.bit("eqc"), x == 0x1234);
        EXPECT_EQ(h.bit("ror"), x != 0);
        EXPECT_EQ(h.bit("rand"), x == 0xffff);
    }
}

TEST_P(BuilderSweep, MuxTreeSelects)
{
    CombHarness h;
    Bus sel = h.in("sel", 3);
    std::vector<Bus> choices;
    for (int i = 0; i < 8; i++)
        choices.push_back(h.in("c" + std::to_string(i), 16));
    h.out("out", h.b().muxTree(sel, choices));

    Rng rng(GetParam() + 4000);
    for (int t = 0; t < 30; t++) {
        std::vector<uint16_t> vals = {
            static_cast<uint16_t>(rng.below(8))};
        for (int i = 0; i < 8; i++)
            vals.push_back(rng.word());
        h.eval(vals);
        EXPECT_EQ(h.word("out"), vals[1 + vals[0]]);
    }
}

TEST_P(BuilderSweep, AdderCarryEdges)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    Bus cin = h.in("cin", 1);
    AddResult r = h.b().adder(a, b, cin[0]);
    h.out("sum", r.sum);
    h.outBit("cout", r.carryOut);
    h.outBit("c7", r.carries[7]);

    // Directed wraparound / full-chain cases plus randomized carry-in.
    std::vector<std::array<uint16_t, 3>> cases = {
        {0xffff, 0x0001, 0},  // full-length carry ripple, wraps to 0
        {0xffff, 0x0000, 1},  // carry-in alone ripples end to end
        {0xffff, 0xffff, 1},  // all-ones + all-ones + cin
        {0x7fff, 0x0001, 0},  // ripple stops at bit 15 (no cout)
        {0x00ff, 0x0001, 0},  // byte-boundary carry: c7 set, cout clear
        {0x8000, 0x8000, 0},  // single-bit carry out of the MSB
        {0x0000, 0x0000, 0},
    };
    Rng rng(GetParam() + 5000);
    for (int t = 0; t < 20; t++) {
        cases.push_back({rng.word(), rng.word(),
                         static_cast<uint16_t>(rng.chance(1, 2))});
    }
    for (auto [x, y, ci] : cases) {
        h.eval({x, y, ci});
        uint32_t wide = static_cast<uint32_t>(x) + y + ci;
        EXPECT_EQ(h.word("sum"), static_cast<uint16_t>(wide));
        EXPECT_EQ(h.bit("cout"), (wide >> 16) != 0);
        EXPECT_EQ(h.bit("c7"), (((x & 0xff) + (y & 0xff) + ci) >> 8)
                      != 0);
    }
}

TEST_P(BuilderSweep, SubtractorBorrowChains)
{
    CombHarness h;
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult r = h.b().subtractor(a, b);
    h.out("diff", r.sum);
    h.outBit("noborrow", r.carryOut);
    h.outBit("c7", r.carries[7]);

    std::vector<std::array<uint16_t, 2>> cases = {
        {0x0000, 0x0001},  // 0 - 1: borrow ripples the whole width
        {0x0000, 0xffff},  // 0 - (-1) = 1, borrowed
        {0x8000, 0x0001},  // borrow chain across 15 zero bits
        {0x0001, 0x0001},  // exact zero: no borrow
        {0xffff, 0xffff},
        {0x0100, 0x0001},  // borrow crosses the byte boundary
        {0x00ff, 0x0100},
    };
    Rng rng(GetParam() + 6000);
    for (int t = 0; t < 20; t++)
        cases.push_back({rng.word(), rng.word()});
    for (auto [x, y] : cases) {
        h.eval({x, y});
        EXPECT_EQ(h.word("diff"), static_cast<uint16_t>(x - y));
        EXPECT_EQ(h.bit("noborrow"), x >= y);
        // carries[7] is the byte-mode no-borrow flag.
        EXPECT_EQ(h.bit("c7"), (x & 0xff) >= (y & 0xff));
    }
}

TEST_P(BuilderSweep, MuxTreeNonPowerOfTwo)
{
    // 5 choices under a 3-bit select: the odd tail of the mux tree
    // must still route every in-range select value correctly.
    CombHarness h;
    Bus sel = h.in("sel", 3);
    std::vector<Bus> choices;
    for (int i = 0; i < 5; i++)
        choices.push_back(h.in("c" + std::to_string(i), 16));
    h.out("out", h.b().muxTree(sel, choices));

    Rng rng(GetParam() + 7000);
    for (int t = 0; t < 30; t++) {
        std::vector<uint16_t> vals = {
            static_cast<uint16_t>(rng.below(5))};
        for (int i = 0; i < 5; i++)
            vals.push_back(rng.word());
        h.eval(vals);
        EXPECT_EQ(h.word("out"), vals[1 + vals[0]]);
    }
}

TEST(Builder, MuxTreeThreeChoices)
{
    CombHarness h;
    Bus sel = h.in("sel", 2);
    std::vector<Bus> choices;
    for (int i = 0; i < 3; i++)
        choices.push_back(h.in("c" + std::to_string(i), 16));
    h.out("out", h.b().muxTree(sel, choices));
    for (uint16_t v = 0; v < 3; v++) {
        h.eval({v, 0x1111, 0x2222, 0x3333});
        EXPECT_EQ(h.word("out"),
                  static_cast<uint16_t>(0x1111 * (v + 1)));
    }
}

TEST_P(BuilderSweep, MuxTreeDefaultOutOfRange)
{
    // 5 choices under a 3-bit select with an explicit default: selects
    // 5..7 must yield the default bus, 0..4 the matching choice.
    CombHarness h;
    Bus sel = h.in("sel", 3);
    std::vector<Bus> choices;
    for (int i = 0; i < 5; i++)
        choices.push_back(h.in("c" + std::to_string(i), 16));
    Bus dflt = h.in("dflt", 16);
    h.out("out", h.b().muxTree(sel, choices, dflt));

    Rng rng(GetParam() + 8000);
    for (int t = 0; t < 40; t++) {
        std::vector<uint16_t> vals = {
            static_cast<uint16_t>(rng.below(8))};
        for (int i = 0; i < 6; i++)
            vals.push_back(rng.word());
        h.eval(vals);
        uint16_t want = vals[0] < 5 ? vals[1 + vals[0]] : vals[6];
        EXPECT_EQ(h.word("out"), want) << "sel=" << vals[0];
    }
}

TEST(Builder, MuxTreeDefaultNonPowerOfTwoWidths)
{
    // Every (choice count, select width) shape up to 4 select bits,
    // exercising both the padded tail and full trees.
    for (size_t sel_bits = 1; sel_bits <= 4; sel_bits++) {
        size_t slots = 1ull << sel_bits;
        for (size_t n = 1; n <= slots; n++) {
            CombHarness h;
            Bus sel = h.in("sel", static_cast<int>(sel_bits));
            std::vector<Bus> choices;
            for (size_t i = 0; i < n; i++)
                choices.push_back(
                    h.in("c" + std::to_string(i), 16));
            Bus dflt = h.in("dflt", 16);
            h.out("out", h.b().muxTree(sel, choices, dflt));
            for (size_t v = 0; v < slots; v++) {
                std::vector<uint16_t> vals = {
                    static_cast<uint16_t>(v)};
                for (size_t i = 0; i < n; i++)
                    vals.push_back(
                        static_cast<uint16_t>(0x111 * (i + 1)));
                vals.push_back(0xBEEF);
                h.eval(vals);
                uint16_t want = v < n
                                    ? static_cast<uint16_t>(
                                          0x111 * (v + 1))
                                    : 0xBEEF;
                EXPECT_EQ(h.word("out"), want)
                    << "sel_bits=" << sel_bits << " n=" << n
                    << " v=" << v;
            }
        }
    }
}

TEST(Builder, MuxTreeDefaultSingleChoice)
{
    // Degenerate 1-choice tree: select 0 hits the choice, everything
    // else the default.
    CombHarness h;
    Bus sel = h.in("sel", 2);
    Bus c0 = h.in("c0", 16);
    Bus dflt = h.in("dflt", 16);
    h.out("out", h.b().muxTree(sel, {c0}, dflt));
    for (uint16_t v = 0; v < 4; v++) {
        h.eval({v, 0xABCD, 0x5555});
        EXPECT_EQ(h.word("out"), v == 0 ? 0xABCD : 0x5555);
    }
}

TEST(Builder, IncrementerWraparound)
{
    CombHarness h;
    Bus a = h.in("a", 16);
    AddResult r = h.b().incrementer(a);
    h.out("inc", r.sum);
    h.outBit("cout", r.carryOut);
    h.eval({0xffff});
    EXPECT_EQ(h.word("inc"), 0u);      // 0xFFFF + 1 wraps to 0
    EXPECT_TRUE(h.bit("cout"));
    h.eval({0x7fff});
    EXPECT_EQ(h.word("inc"), 0x8000);  // ripple through 15 ones
    EXPECT_FALSE(h.bit("cout"));
    h.eval({0x0000});
    EXPECT_EQ(h.word("inc"), 1u);
    EXPECT_FALSE(h.bit("cout"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Builder, DecoderIsOneHot)
{
    CombHarness h;
    Bus sel = h.in("sel", 4);
    Bus dec = h.b().decoder(sel);
    h.out("dec", dec);
    for (uint16_t v = 0; v < 16; v++) {
        h.eval({v});
        EXPECT_EQ(h.word("dec"), 1u << v);
    }
}

TEST(Builder, IncrementerAndShifts)
{
    CombHarness h;
    Bus a = h.in("a", 16);
    h.out("inc", h.b().incrementer(a).sum);
    h.out("shr", h.b().shiftRight1(a, h.b().tie0()));
    h.out("shl", h.b().shiftLeft1(a, h.b().tie1()));
    Rng rng(11);
    for (int t = 0; t < 30; t++) {
        uint16_t x = t == 0 ? 0xffff : rng.word();
        h.eval({x});
        EXPECT_EQ(h.word("inc"), static_cast<uint16_t>(x + 1));
        EXPECT_EQ(h.word("shr"), x >> 1);
        EXPECT_EQ(h.word("shl"), static_cast<uint16_t>((x << 1) | 1));
    }
}

TEST(Netlist, StatsAndModules)
{
    Netlist nl;
    NetBuilder b(nl, Module::Alu);
    GateId a = nl.addInput("a");
    GateId x = b.and2(a, a);
    b.setModule(Module::RF);
    GateId q = b.dff(x);
    nl.addOutput("q", q);
    nl.validate();

    NetlistStats s = nl.stats();
    EXPECT_EQ(s.numCells, 2u);
    EXPECT_EQ(s.numSequential, 1u);
    EXPECT_GT(s.area, 0.0);
    EXPECT_EQ(nl.moduleStats(Module::Alu).numCells, 1u);
    EXPECT_EQ(nl.moduleStats(Module::RF).numCells, 1u);
    EXPECT_EQ(nl.moduleStats(Module::Mult).numCells, 0u);
}

TEST(Netlist, LevelizeRespectsDependencies)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g1 = b.inv(a);
    GateId g2 = b.and2(g1, a);
    GateId g3 = b.or2(g2, g1);
    nl.addOutput("o", g3);
    std::vector<GateId> order = nl.levelize();
    auto pos = [&](GateId id) {
        for (size_t i = 0; i < order.size(); i++) {
            if (order[i] == id)
                return static_cast<long>(i);
        }
        return -1l;
    };
    EXPECT_LT(pos(g1), pos(g2));
    EXPECT_LT(pos(g2), pos(g3));
}

TEST(Netlist, TieCellsAreSharedPerModule)
{
    Netlist nl;
    GateId t1 = nl.tie(true, Module::Alu);
    GateId t2 = nl.tie(true, Module::Alu);
    GateId t3 = nl.tie(true, Module::RF);
    GateId t4 = nl.tie(false, Module::Alu);
    EXPECT_EQ(t1, t2);
    EXPECT_NE(t1, t3);
    EXPECT_NE(t1, t4);
}

TEST(Netlist, PortsAndBuses)
{
    Netlist nl;
    NetBuilder b(nl);
    Bus in = b.inputBus("data", 4);
    b.outputBus("out", in);
    EXPECT_TRUE(nl.hasPort("data[0]"));
    EXPECT_TRUE(nl.hasPort("out[3]"));
    EXPECT_FALSE(nl.hasPort("nope"));
    EXPECT_EQ(nl.bus("data", 4).size(), 4u);
    EXPECT_EQ(nl.inputIds().size(), 4u);
    EXPECT_EQ(nl.outputIds().size(), 4u);
}

} // namespace
} // namespace bespoke
