/**
 * @file
 * Verilog importer diagnostics: every malformed input class the
 * importer promises to reject must fail with a useful message and a
 * correct line number, never crash, and never produce a netlist.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/io/netlist_json.hh"
#include "src/io/verilog_import.hh"

namespace bespoke
{
namespace
{

/** Expect failure whose message contains `what`; returns the result. */
VerilogImportResult
expectError(const std::string &text, const std::string &what)
{
    VerilogImportResult res = importVerilog(text);
    EXPECT_FALSE(res.ok) << "accepted bad input: " << what;
    EXPECT_NE(res.error.find(what), std::string::npos)
        << "error was: " << res.error;
    return res;
}

TEST(ImportErrors, UnknownCell)
{
    VerilogImportResult res = expectError(
        "module t (input a, output y);\n"
        "  wire w;\n"
        "  FOO_X1 u0 (.A(a), .Y(w));\n"
        "  assign y = w;\n"
        "endmodule\n",
        "unknown cell 'FOO_X1'");
    EXPECT_EQ(res.line, 3);
}

TEST(ImportErrors, BareCellNameWithoutDrive)
{
    expectError("module t (input a, output y);\n"
                "  INV u0 (.A(a), .Y(y));\n"
                "endmodule\n",
                "unknown cell 'INV'");
}

TEST(ImportErrors, PseudoCellNotInstantiable)
{
    expectError("module t (input a, output y);\n"
                "  INPUT u0 (.Y(y));\n"
                "endmodule\n",
                "not instantiable");
}

TEST(ImportErrors, UnknownPin)
{
    VerilogImportResult res = expectError(
        "module t (input a, output y);\n"
        "  INV_X1 u0 (.A(a), .B(a), .Y(y));\n"
        "endmodule\n",
        "cell 'INV_X1' has no pin 'B'");
    EXPECT_EQ(res.line, 2);
}

TEST(ImportErrors, MissingPin)
{
    expectError("module t (input a, output y);\n"
                "  NAND2_X1 u0 (.A(a), .Y(y));\n"
                "endmodule\n",
                "pin 'B' is not connected");
}

TEST(ImportErrors, DuplicatePin)
{
    expectError("module t (input a, output y);\n"
                "  NAND2_X1 u0 (.A(a), .A(a), .B(a), .Y(y));\n"
                "endmodule\n",
                "pin 'A' connected twice");
}

TEST(ImportErrors, MissingOutputPin)
{
    expectError("module t (input a, output y);\n"
                "  wire w;\n"
                "  INV_X1 u0 (.A(a));\n"
                "  assign y = a;\n"
                "endmodule\n",
                "output pin 'Y' is not connected");
}

TEST(ImportErrors, MultiplyDrivenNet)
{
    VerilogImportResult res = expectError(
        "module t (input a, output y);\n"
        "  wire w;\n"
        "  INV_X1 u0 (.A(a), .Y(w));\n"
        "  BUF_X1 u1 (.A(a), .Y(w));\n"
        "  assign y = w;\n"
        "endmodule\n",
        "net 'w' is multiply driven");
    EXPECT_EQ(res.line, 4);
    // The diagnostic points back at the first driver too.
    EXPECT_NE(res.error.find("line 3"), std::string::npos)
        << res.error;
}

TEST(ImportErrors, UndrivenNet)
{
    VerilogImportResult res = expectError(
        "module t (input a, output y);\n"
        "  wire w;\n"
        "  INV_X1 u0 (.A(w), .Y(y));\n"
        "endmodule\n",
        "net 'w' is undriven");
    EXPECT_EQ(res.line, 3);
}

TEST(ImportErrors, UndrivenOutputPort)
{
    expectError("module t (input a, output y);\n"
                "endmodule\n",
                "net 'y' is undriven");
}

TEST(ImportErrors, UndeclaredNet)
{
    expectError("module t (input a, output y);\n"
                "  INV_X1 u0 (.A(nope), .Y(y));\n"
                "endmodule\n",
                "'nope' is not declared");
}

TEST(ImportErrors, OutOfRangeBitSelect)
{
    expectError("module t (input [3:0] a, output y);\n"
                "  assign y = a[4];\n"
                "endmodule\n",
                "bit 4 out of range for 'a[3:0]'");
}

TEST(ImportErrors, BitSelectOnScalar)
{
    expectError("module t (input a, output y);\n"
                "  assign y = a[0];\n"
                "endmodule\n",
                "bit select on scalar net 'a'");
}

TEST(ImportErrors, VectorWithoutBitSelect)
{
    expectError("module t (input [3:0] a, output y);\n"
                "  assign y = a;\n"
                "endmodule\n",
                "used without a bit select");
}

TEST(ImportErrors, TruncatedFile)
{
    VerilogImportResult res = expectError(
        "module t (input a, output y);\n"
        "  wire w;\n"
        "  INV_X1 u0 (.A(a),",
        "unexpected end of file");
    EXPECT_EQ(res.line, 3);
}

TEST(ImportErrors, MissingEndmodule)
{
    expectError("module t (input a, output y);\n"
                "  assign y = a;\n",
                "missing endmodule");
}

TEST(ImportErrors, TwoModulesInOneFile)
{
    expectError("module t (input a, output y);\n"
                "  assign y = a;\n"
                "endmodule\n"
                "module u (input a, output y);\n"
                "endmodule\n",
                "one module per file");
}

TEST(ImportErrors, WideConstant)
{
    expectError("module t (input a, output y);\n"
                "  assign y = 2'b01;\n"
                "endmodule\n",
                "only 1-bit constants");
}

TEST(ImportErrors, XConstant)
{
    expectError("module t (input a, output y);\n"
                "  assign y = 1'bx;\n"
                "endmodule\n",
                "unsupported constant");
}

TEST(ImportErrors, PositionalConnections)
{
    expectError("module t (input a, output y);\n"
                "  INV_X1 u0 (a, y);\n"
                "endmodule\n",
                "positional connections are not supported");
}

TEST(ImportErrors, Concatenation)
{
    expectError("module t (input [1:0] a, output y);\n"
                "  assign y = {a[0], a[1]};\n"
                "endmodule\n",
                "concatenations are not supported");
}

TEST(ImportErrors, BehavioralConstruct)
{
    expectError("module t (input a, output y);\n"
                "  reg r;\n"
                "  assign y = a;\n"
                "endmodule\n",
                "behavioral construct 'reg'");
}

TEST(ImportErrors, RvalOnCombinationalCell)
{
    expectError("module t (input a, output y);\n"
                "  INV_X1 #(.RVAL(1'b0)) u0 (.A(a), .Y(y));\n"
                "endmodule\n",
                "RVAL parameter on combinational cell");
}

TEST(ImportErrors, UnknownParameter)
{
    expectError(
        "module t (input clk, input rst_n, input a, output y);\n"
        "  DFF_X1 #(.INIT(1'b0)) u0 (.CLK(clk), .RSTN(rst_n), "
        ".D(a), .Q(y));\n"
        "endmodule\n",
        "unknown parameter 'INIT'");
}

TEST(ImportErrors, FlopWithoutClock)
{
    expectError(
        "module t (input rst_n, input a, output y);\n"
        "  DFF_X1 u0 (.RSTN(rst_n), .D(a), .Q(y));\n"
        "endmodule\n",
        "pin 'CLK' is not connected");
}

TEST(ImportErrors, TwoClockNets)
{
    expectError(
        "module t (input clk, input clk2, input rst_n, input a,\n"
        "          output y, output z);\n"
        "  DFF_X1 u0 (.CLK(clk), .RSTN(rst_n), .D(a), .Q(y));\n"
        "  DFF_X1 u1 (.CLK(clk2), .RSTN(rst_n), .D(a), .Q(z));\n"
        "endmodule\n",
        "second clock net 'clk2'");
}

TEST(ImportErrors, ClockUsedAsData)
{
    expectError("module t (input clk, input rst_n, input a, output y);\n"
                "  DFF_X1 u0 (.CLK(clk), .RSTN(rst_n), .D(a), .Q(y));\n"
                "  wire w;\n"
                "  INV_X1 u1 (.A(clk), .Y(w));\n"
                "endmodule\n",
                "clock/reset net 'clk' used as data");
}

TEST(ImportErrors, UnknownModuleLabel)
{
    expectError("module t (input a, output y);\n"
                "  (* bespoke_module = \"warp_core\" *)\n"
                "  INV_X1 u0 (.A(a), .Y(y));\n"
                "endmodule\n",
                "unknown module label 'warp_core'");
}

TEST(ImportErrors, CombinationalLoop)
{
    expectError("module t (input a, output y);\n"
                "  wire w0;\n"
                "  wire w1;\n"
                "  INV_X1 u0 (.A(w1), .Y(w0));\n"
                "  INV_X1 u1 (.A(w0), .Y(w1));\n"
                "  assign y = w0;\n"
                "endmodule\n",
                "combinational loop");
}

TEST(ImportErrors, AssignmentCycle)
{
    expectError("module t (input i, output y);\n"
                "  wire a;\n"
                "  wire b;\n"
                "  assign a = b;\n"
                "  assign b = a;\n"
                "  assign y = a;\n"
                "endmodule\n",
                "assignment cycle");
}

TEST(ImportErrors, PortWithoutDirection)
{
    expectError("module t (a, y);\n"
                "  input a;\n"
                "  assign y = a;\n"
                "endmodule\n",
                "has no input/output declaration");
}

TEST(ImportErrors, UnconnectedPin)
{
    expectError("module t (input a, output y);\n"
                "  INV_X1 u0 (.A(), .Y(y));\n"
                "endmodule\n",
                "is unconnected");
}

// ------------------------------------------------ JSON loader errors

TEST(ImportEscaped, EscapedIdentifiersAreOrdinaryNames)
{
    // `\name ` and `name` are the same identifier (the output is
    // declared escaped and assigned unescaped); `\u.0 ` and
    // `\cnt[3] ` are only spellable escaped; `\wire ` is a net, not a
    // keyword. No vector `cnt` exists, so `\cnt[3] ` is a scalar.
    VerilogImportResult res = importVerilog(
        "module \\top (input \\a , input b, output \\y );\n"
        "  wire \\cnt[3] ;\n"
        "  wire \\wire ;\n"
        "  NAND2_X1 \\u.0 (.A(\\a ), .B(b), .Y(\\cnt[3] ));\n"
        "  INV_X1 u1 (.A(\\cnt[3] ), .Y(\\wire ));\n"
        "  assign y = \\wire ;\n"
        "endmodule\n");
    ASSERT_TRUE(res.ok) << res.format("<inline>");
    EXPECT_EQ(res.moduleName, "top");
    EXPECT_EQ(res.netlist.inputIds().size(), 2u);
    EXPECT_EQ(res.netlist.outputIds().size(), 1u);
    // The escaped input port keeps its plain name.
    EXPECT_NE(res.netlist.port("a"), kNoGate);
    // An escaped identifier followed by a bit select still selects:
    // `\v [2]` is bit 2 of the vector v.
    VerilogImportResult sel = importVerilog(
        "module t (input [3:0] v, output y);\n"
        "  assign y = \\v [2];\n"
        "endmodule\n");
    ASSERT_TRUE(sel.ok) << sel.format("<inline>");
}

TEST(ImportErrors, EscapedIdentifierIsNeverAKeyword)
{
    VerilogImportResult res = expectError(
        "\\module t (input a, output y);\nendmodule\n",
        "expected 'module', got '\\module'");
    EXPECT_EQ(res.line, 1);
    EXPECT_EQ(res.col, 1);
}

TEST(ImportErrors, EmptyEscapedIdentifier)
{
    VerilogImportResult res =
        expectError("module t (input \\ a, output y);\n"
                    "endmodule\n",
                    "empty escaped identifier");
    EXPECT_EQ(res.line, 1);
    EXPECT_EQ(res.col, 17);
}

TEST(ImportErrors, EscapedNetCollidingWithVectorBit)
{
    // `\v[3] ` next to `input [7:0] v` would alias the drivers_ key
    // of the vector's bit 3; rejected with the escaped decl's
    // position, in both declaration orders.
    VerilogImportResult res = expectError(
        "module t (input [7:0] v, output y);\n"
        "  wire \\v[3] ;\n"
        "  assign y = v[3];\n"
        "endmodule\n",
        "escaped net '\\v[3]' collides with bit 3 of vector 'v'");
    EXPECT_EQ(res.line, 2);
    EXPECT_EQ(res.col, 8);
    EXPECT_EQ(res.format("t.v"),
              "t.v:2:8: escaped net '\\v[3]' collides with bit 3 of "
              "vector 'v'");

    expectError("module t (input a, output \\q[0] );\n"
                "  wire [1:0] q;\n"
                "  assign q[0] = a;\n"
                "  assign q[1] = a;\n"
                "  assign \\q[0]  = a;\n"
                "endmodule\n",
                "collides with bit 0 of vector 'q'");

    // Out of the vector's range there is no aliasing: accepted.
    VerilogImportResult ok = importVerilog(
        "module t (input [7:0] v, output y);\n"
        "  wire \\v[8] ;\n"
        "  INV_X1 u0 (.A(v[0]), .Y(\\v[8] ));\n"
        "  assign y = \\v[8] ;\n"
        "endmodule\n");
    EXPECT_TRUE(ok.ok) << ok.format("<inline>");
}

TEST(JsonErrors, RejectsEditsAndTruncation)
{
    // A well-formed document for a tiny netlist...
    Netlist nl;
    GateId a = nl.addInput("a");
    GateId g = nl.addGate(CellType::INV, Module::Alu, a);
    nl.addOutput("y", g);
    std::string text = netlistToJsonText(nl);
    ASSERT_TRUE(netlistFromJsonText(text).ok);

    // ...edited without updating the hash: rejected.
    size_t pos = text.find("\"alu\"");
    ASSERT_NE(pos, std::string::npos);
    std::string edited = text;
    edited.replace(pos, 5, "\"sfr\"");
    NetlistJsonResult res = netlistFromJsonText(edited);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("content hash mismatch"),
              std::string::npos)
        << res.error;

    // Truncation is malformed JSON.
    EXPECT_FALSE(
        netlistFromJsonText(text.substr(0, text.size() / 2)).ok);
}

TEST(JsonErrors, BadDocuments)
{
    auto err = [](const std::string &text) {
        NetlistJsonResult res = netlistFromJsonText(text);
        EXPECT_FALSE(res.ok) << text;
        return res.error;
    };
    EXPECT_NE(err("[1,2]").find("not an object"), std::string::npos);
    EXPECT_NE(err("{\"format\":\"nope\"}").find("format"),
              std::string::npos);
    EXPECT_NE(
        err("{\"format\":\"bespoke-netlist\",\"version\":9}")
            .find("version"),
        std::string::npos);
    EXPECT_NE(err("{\"format\":\"bespoke-netlist\",\"version\":1}")
                  .find("gates"),
              std::string::npos);
    // Unknown cell name.
    EXPECT_NE(
        err("{\"format\":\"bespoke-netlist\",\"version\":1,"
            "\"gates\":[[\"FOO\",\"X1\",\"glue\",0,[]]],"
            "\"ports\":[]}")
            .find("unknown cell"),
        std::string::npos);
    // Arity mismatch.
    EXPECT_NE(
        err("{\"format\":\"bespoke-netlist\",\"version\":1,"
            "\"gates\":[[\"INPUT\",\"X1\",\"glue\",0,[]],"
            "[\"NAND2\",\"X1\",\"glue\",0,[0]]],"
            "\"ports\":[[\"a\",0]]}")
            .find("takes 2 fanins, got 1"),
        std::string::npos);
    // Dangling fanin id.
    EXPECT_NE(
        err("{\"format\":\"bespoke-netlist\",\"version\":1,"
            "\"gates\":[[\"INPUT\",\"X1\",\"glue\",0,[]],"
            "[\"INV\",\"X1\",\"glue\",0,[7]]],"
            "\"ports\":[[\"a\",0]]}")
            .find("out of range"),
        std::string::npos);
}

} // namespace
} // namespace bespoke
