/**
 * @file
 * Job scheduler: spec parsing, the determinism contract (per-job
 * deterministic payloads bit-identical between a serial run and a
 * concurrent one with leased workers and a shared checkpoint store),
 * cross-job in-flight dedup ("first runner computes, the rest wait"),
 * queue resilience (a failing job never aborts the queue), and a
 * many-small-jobs stress run that the TSan CI shard executes under
 * the race detector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/service/job_scheduler.hh"

namespace fs = std::filesystem;

namespace bespoke
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "bespoke_" + name;
    fs::remove_all(dir);
    return dir;
}

JobSpec
tailorSpec(const std::string &app, const std::string &id = "")
{
    JobSpec spec;
    spec.id = id;
    spec.kind = "tailor";
    spec.apps = {app};
    return spec;
}

SchedulerOptions
fastOpts(int job_threads, int worker_threads,
         const std::string &dir = "")
{
    SchedulerOptions sopts;
    sopts.jobThreads = job_threads;
    sopts.workerThreads = worker_threads;
    sopts.checkpointDir = dir;
    sopts.flow.powerInputsPerWorkload = 1;
    return sopts;
}

std::vector<JobResult>
runQueue(const std::vector<JobSpec> &queue, SchedulerOptions sopts)
{
    JobScheduler sched(std::move(sopts));
    for (const JobSpec &spec : queue)
        sched.submit(spec);
    return sched.finish();
}

JobSpec
parseOk(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(text, doc, err)) << err;
    JobSpec spec;
    EXPECT_TRUE(parseJobSpec(doc, &spec, &err)) << err;
    return spec;
}

std::string
parseErr(const std::string &text)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(text, doc, err)) << err;
    JobSpec spec;
    EXPECT_FALSE(parseJobSpec(doc, &spec, &err));
    EXPECT_FALSE(err.empty());
    return err;
}

TEST(JobScheduler, ParseAcceptsEveryField)
{
    JobSpec spec = parseOk(
        R"({"id": "j1", "kind": "tailor", "apps": ["mult", "div"],
            "core": "extended", "threads": 3, "power_inputs": 5,
            "power_seed": 77, "inputs_per_mutant": 2,
            "mutant_seed": 9, "max_mutants": 10})");
    EXPECT_EQ(spec.id, "j1");
    EXPECT_EQ(spec.kind, "tailor");
    EXPECT_EQ(spec.apps, (std::vector<std::string>{"mult", "div"}));
    EXPECT_EQ(spec.core, "extended");
    EXPECT_EQ(spec.threads, 3);
    EXPECT_EQ(spec.powerInputs, 5);
    EXPECT_EQ(spec.powerSeed, 77u);
    EXPECT_EQ(spec.inputsPerMutant, 2);
    EXPECT_EQ(spec.mutantSeed, 9u);
    EXPECT_EQ(spec.maxMutants, 10);

    JobSpec check = parseOk(
        R"({"kind": "check", "app": "mult", "netlist": "cand.json",
            "against": "ref.v"})");
    EXPECT_EQ(check.netlist, "cand.json");
    EXPECT_EQ(check.against, "ref.v");

    JobSpec inl = parseOk(
        R"({"kind": "check", "app": "mult",
            "netlist_json": {"format": "bespoke-netlist"}})");
    EXPECT_NE(inl.netlistInline.find("bespoke-netlist"),
              std::string::npos);
}

TEST(JobScheduler, ParseRejectsBadSpecs)
{
    EXPECT_NE(parseErr(R"({"app": "mult"})").find("kind"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"kind": "frob", "app": "mult"})")
                  .find("frob"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"kind": "tailor"})").find("app"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"kind": "tailor", "app": 5})")
                  .find("string"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"kind": "tailor", "app": "mult",
                           "bogus": 1})")
                  .find("bogus"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"kind": "tailor", "app": "mult",
                           "threads": -2})")
                  .find("non-negative"),
              std::string::npos);
    // Only multi-app tailor fans a workload set into one design.
    EXPECT_NE(parseErr(R"({"kind": "verify",
                           "apps": ["mult", "div"]})")
                  .find("exactly one"),
              std::string::npos);
    // check compares a *given* candidate; there is nothing to check
    // when both sides would be freshly built cores.
    EXPECT_NE(parseErr(R"({"kind": "check", "app": "mult"})")
                  .find("netlist"),
              std::string::npos);
    JobSpec spec;
    std::string err;
    EXPECT_FALSE(parseJobSpec(JsonValue::number(3), &spec, &err));
}

TEST(JobScheduler, ParseJobListBothShapes)
{
    std::vector<JobSpec> specs;
    std::string err;
    ASSERT_TRUE(parseJobList(
        R"([{"kind": "tailor", "app": "mult"}])", &specs, &err))
        << err;
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].apps[0], "mult");

    ASSERT_TRUE(parseJobList(
        R"({"jobs": [{"kind": "tailor", "app": "mult"},
                     {"kind": "mutant_sweep", "app": "div"}]})",
        &specs, &err))
        << err;
    EXPECT_EQ(specs.size(), 2u);

    EXPECT_FALSE(parseJobList(R"({"nope": []})", &specs, &err));
    EXPECT_FALSE(parseJobList(
        R"([{"kind": "tailor", "app": "mult"}, {"kind": "bad"}])",
        &specs, &err));
    // The diagnostic names the failing entry.
    EXPECT_NE(err.find("job 1"), std::string::npos);
}

/**
 * The acceptance contract: a concurrent scheduler (4 runner threads,
 * leased workers, shared checkpoint store) produces per-job
 * deterministic results bit-identical to a serial no-checkpoint run.
 * The queue mixes kinds and includes a failing job.
 */
TEST(JobScheduler, ConcurrentResultsBitIdenticalToSerial)
{
    std::vector<JobSpec> queue;
    queue.push_back(tailorSpec("mult", "t-mult"));
    queue.push_back(tailorSpec("div", "t-div"));
    JobSpec multi;
    multi.id = "t-multi";
    multi.kind = "tailor";
    multi.apps = {"mult", "div"};
    queue.push_back(multi);
    JobSpec sweep;
    sweep.id = "sweep";
    sweep.kind = "mutant_sweep";
    sweep.apps = {"mult"};
    sweep.maxMutants = 4;
    sweep.inputsPerMutant = 2;
    queue.push_back(sweep);
    queue.push_back(tailorSpec("no_such_app", "bad"));

    std::vector<JobResult> serial =
        runQueue(queue, fastOpts(1, 1));
    std::string dir = freshDir("sched_concurrent");
    std::vector<JobSpec> wide = queue;
    for (JobSpec &spec : wide)
        spec.threads = 2;
    std::vector<JobResult> conc =
        runQueue(wide, fastOpts(4, 4, dir));

    ASSERT_EQ(serial.size(), conc.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].deterministicJson().dump(),
                  conc[i].deterministicJson().dump())
            << "job " << serial[i].id;
    }
    EXPECT_FALSE(serial[4].ok);
    EXPECT_NE(serial[4].error.find("no_such_app"), std::string::npos);
    fs::remove_all(dir);
}

/**
 * Two identical jobs under one store: every shared stage is computed
 * exactly once (stage records only appear when a job *computes* a
 * stage — hits and lock-waits record nothing).
 */
TEST(JobScheduler, IdenticalConcurrentJobsComputeStagesOnce)
{
    std::string dir = freshDir("sched_dedup");
    std::vector<JobSpec> queue;
    queue.push_back(tailorSpec("mult", "a"));
    queue.push_back(tailorSpec("mult", "b"));
    std::vector<JobResult> results =
        runQueue(queue, fastOpts(2, 2, dir));

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(results[0].payload.dump(), results[1].payload.dump());
    // analysis + design + metrics: three computations total across
    // both jobs, however the schedule interleaved them.
    size_t computed =
        results[0].stages.size() + results[1].stages.size();
    EXPECT_EQ(computed, 3u);
    // ...and whoever did not compute a stage loaded it.
    EXPECT_GE(results[0].checkpointHits + results[1].checkpointHits,
              3u);
    fs::remove_all(dir);
}

/**
 * Backpressure: trySubmit() refuses work beyond the cap while
 * submit() (batch mode) deliberately ignores it. One runner thread and
 * two immediate trySubmit() calls make the refusal deterministic: the
 * first job cannot have drained the queue between two back-to-back
 * enqueues.
 */
TEST(JobScheduler, TrySubmitEnforcesBackpressureCap)
{
    SchedulerOptions sopts = fastOpts(1, 1);
    sopts.maxQueued = 2;
    JobScheduler sched(std::move(sopts));
    std::string id;
    EXPECT_TRUE(sched.trySubmit(tailorSpec("mult", "a"), &id));
    EXPECT_EQ(id, "a");
    EXPECT_TRUE(sched.trySubmit(tailorSpec("div", "b")));
    EXPECT_FALSE(sched.trySubmit(tailorSpec("binSearch", "c")));
    // Batch submission bypasses the cap by design.
    sched.submit(tailorSpec("mult", "d"));
    std::vector<JobResult> results = sched.finish();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].id, "a");
    EXPECT_EQ(results[1].id, "b");
    EXPECT_EQ(results[2].id, "d");
    for (const JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    // Once drained, the same scheduler accepts again.
    EXPECT_TRUE(sched.trySubmit(tailorSpec("mult", "e")));
    EXPECT_TRUE(sched.finish().back().ok);
}

/** The serve-mode rejection line: shape pinned for stream consumers. */
TEST(JobScheduler, BackpressureRejectionResultShape)
{
    JobResult r = backpressureRejection("j7", "tailor", 3, "line-12");
    EXPECT_EQ(r.id, "j7");
    EXPECT_EQ(r.kind, "tailor");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "rejected: backpressure (3 outstanding jobs)");
    // Specs without an id get the caller's fallback label.
    EXPECT_EQ(backpressureRejection("", "verify", 1, "line-4").id,
              "line-4");
    JsonValue j = r.deterministicJson();
    EXPECT_EQ(j.find("id")->asString(), "j7");
    EXPECT_FALSE(j.find("ok")->asBool());
    EXPECT_NE(j.find("error")->asString().find("rejected: backpressure"),
              std::string::npos);
}

/**
 * The SAT never-toggle pass running inside concurrent scheduler jobs
 * (the TSan shard executes this under the race detector): verdicts and
 * payloads must be bit-identical to a serial run, at any thread count.
 */
TEST(JobScheduler, SatPassInsideConcurrentJobsMatchesSerial)
{
    auto satSpec = [](const std::string &id) {
        JobSpec spec = tailorSpec("mult", id);
        spec.passes = "default,sat-never-toggle";
        spec.satDepth = 12;  // keep the bounded check cheap here
        return spec;
    };
    std::vector<JobSpec> queue = {satSpec("s1"), satSpec("s2")};
    std::vector<JobResult> serial = runQueue(queue, fastOpts(1, 1));
    std::vector<JobSpec> wide = queue;
    for (JobSpec &spec : wide)
        spec.threads = 2;
    std::vector<JobResult> conc = runQueue(wide, fastOpts(2, 2));
    ASSERT_EQ(serial.size(), conc.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_TRUE(serial[i].ok) << serial[i].error;
        EXPECT_EQ(serial[i].deterministicJson().dump(),
                  conc[i].deterministicJson().dump())
            << "job " << serial[i].id;
    }
    // The payload carries the SAT verdict block.
    const JsonValue *sat =
        serial[0].payload.find("sat_never_toggle");
    ASSERT_NE(sat, nullptr);
    EXPECT_NE(sat->find("candidates"), nullptr);
    EXPECT_NE(sat->find("proven"), nullptr);
}

TEST(JobScheduler, FailedJobDoesNotAbortQueue)
{
    std::vector<JobSpec> queue;
    queue.push_back(tailorSpec("no_such_app", "bad-app"));
    JobSpec badfile;
    badfile.id = "bad-file";
    badfile.kind = "tailor";
    badfile.apps = {"mult"};
    badfile.netlist = "/nonexistent/netlist.json";
    queue.push_back(badfile);
    queue.push_back(tailorSpec("mult", "good"));

    JobScheduler sched(fastOpts(1, 1));
    for (const JobSpec &spec : queue)
        sched.submit(spec);
    std::vector<JobResult> results = sched.finish();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("cannot read"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(sched.failures(), 2u);
}

/**
 * Stress for the TSan shard: many small jobs hammering the shared
 * store, coordinator, and budget from 4 runners, with the serialized
 * progress stream on. Event accounting must balance exactly.
 */
TEST(JobScheduler, StressManySmallJobsUnderSharedStore)
{
    std::string dir = freshDir("sched_stress");
    SchedulerOptions sopts = fastOpts(4, 2, dir);
    std::atomic<size_t> started{0}, done{0};
    size_t events_unlocked = 0;  // mutated under the progress lock
    sopts.progress = [&](const JsonValue &ev) {
        const std::string &kind = ev.find("event")->asString();
        started += kind == "job_start";
        done += kind == "job_done";
        events_unlocked++;  // races iff the callback is not serialized
    };
    const char *apps[] = {"mult", "div", "binSearch"};
    size_t n = 0;
    std::vector<JobResult> results;
    {
        JobScheduler sched(std::move(sopts));
        for (int round = 0; round < 4; round++) {
            for (const char *app : apps) {
                sched.submit(tailorSpec(
                    app, std::string(app) + "-" +
                             std::to_string(round)));
                n++;
            }
        }
        results = sched.finish();
    }
    ASSERT_EQ(results.size(), n);
    for (const JobResult &r : results)
        EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_EQ(started.load(), n);
    EXPECT_EQ(done.load(), n);
    EXPECT_GE(events_unlocked, 2 * n);
    // 3 distinct apps -> 9 stage computations however the 12 jobs
    // interleaved; everything else deduped onto the store.
    size_t computed = 0;
    for (const JobResult &r : results)
        computed += r.stages.size();
    EXPECT_EQ(computed, 9u);
    fs::remove_all(dir);
}

} // namespace
} // namespace bespoke
