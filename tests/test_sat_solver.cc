/**
 * @file
 * CDCL solver cross-checks: randomized verdict comparison against a
 * brute-force enumerator on small CNFs (the solver must agree with
 * exhaustive truth-table evaluation on every seed), assumption and
 * failed-assumption (core) semantics on hand-built formulas, model
 * sanity on satisfiable instances, and bit-level determinism of
 * repeated identical solves.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sat/cdcl.hh"
#include "src/sat/cnf.hh"
#include "src/util/rng.hh"

namespace bespoke::sat
{
namespace
{

/** A CNF over vars 1..n as literal lists (var 0 stays reserved). */
struct RandomCnf
{
    int nVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

RandomCnf
genCnf(Rng &rng, int max_vars)
{
    RandomCnf f;
    f.nVars = 1 + static_cast<int>(rng.next() % max_vars);
    // Around the 3-SAT phase transition so both verdicts appear.
    int n_clauses =
        1 + static_cast<int>(rng.next() % (4 * f.nVars + 3));
    for (int c = 0; c < n_clauses; c++) {
        int width = 1 + static_cast<int>(rng.next() % 3);
        std::vector<Lit> cl;
        for (int k = 0; k < width; k++) {
            Var v = 1 + static_cast<Var>(rng.next() % f.nVars);
            cl.push_back(mkLit(v, rng.next() & 1));
        }
        f.clauses.push_back(std::move(cl));
    }
    return f;
}

/** Exhaustive truth-table satisfiability of a RandomCnf. */
bool
bruteForceSat(const RandomCnf &f)
{
    for (uint32_t m = 0; m < (1u << f.nVars); m++) {
        bool all = true;
        for (const std::vector<Lit> &cl : f.clauses) {
            bool any = false;
            for (Lit l : cl) {
                bool v = (m >> (l.var() - 1)) & 1;
                if (v != l.negated()) {
                    any = true;
                    break;
                }
            }
            if (!any) {
                all = false;
                break;
            }
        }
        if (all)
            return true;
    }
    return false;
}

/** Load a RandomCnf into a fresh solver (allocating its vars). */
void
load(CdclSolver &s, const RandomCnf &f)
{
    for (int v = 0; v < f.nVars; v++)
        s.newVar();
    for (const std::vector<Lit> &cl : f.clauses)
        s.addClause(cl.data(), cl.size());
}

TEST(SatSolver, RandomCnfsAgreeWithBruteForce)
{
    int sat = 0, unsat = 0;
    for (uint64_t seed = 0; seed < 1000; seed++) {
        Rng rng(0x5eed0000 + seed);
        RandomCnf f = genCnf(rng, 16);
        CdclSolver s;
        load(s, f);
        SolveResult r = s.solve();
        ASSERT_NE(r, SolveResult::Unknown);
        bool expect = bruteForceSat(f);
        ASSERT_EQ(r == SolveResult::Sat, expect)
            << "seed " << seed << ": solver says "
            << (r == SolveResult::Sat ? "SAT" : "UNSAT")
            << ", brute force says " << (expect ? "SAT" : "UNSAT");
        (expect ? sat : unsat)++;
        if (r == SolveResult::Sat) {
            // The model must actually satisfy every clause.
            for (const std::vector<Lit> &cl : f.clauses) {
                bool any = false;
                for (Lit l : cl)
                    any = any || s.modelValue(l);
                ASSERT_TRUE(any) << "seed " << seed
                                 << ": model violates a clause";
            }
        }
    }
    // The generator must exercise both verdicts heavily.
    EXPECT_GT(sat, 100);
    EXPECT_GT(unsat, 100);
}

TEST(SatSolver, RandomCnfsUnderAssumptionsAgreeWithBruteForce)
{
    for (uint64_t seed = 0; seed < 300; seed++) {
        Rng rng(0xa55e + seed);
        RandomCnf f = genCnf(rng, 12);
        // Pin the first min(3, nVars) variables via assumptions and
        // mirror them as unit clauses for the brute-force check.
        std::vector<Lit> assumps;
        RandomCnf g = f;
        int pins = f.nVars < 3 ? f.nVars : 3;
        for (int k = 0; k < pins; k++) {
            Lit l = mkLit(1 + k, rng.next() & 1);
            assumps.push_back(l);
            g.clauses.push_back({l});
        }
        CdclSolver s;
        load(s, f);
        SolveResult r = s.solve(assumps);
        ASSERT_NE(r, SolveResult::Unknown);
        ASSERT_EQ(r == SolveResult::Sat, bruteForceSat(g))
            << "seed " << seed;
        if (r == SolveResult::Sat) {
            for (Lit l : assumps)
                ASSERT_TRUE(s.modelValue(l));
        }
    }
}

TEST(SatSolver, VerdictsAndStatsAreDeterministic)
{
    for (uint64_t seed = 0; seed < 50; seed++) {
        Rng rng(0xdef0 + seed);
        RandomCnf f = genCnf(rng, 14);
        CdclSolver a, b;
        load(a, f);
        load(b, f);
        SolveResult ra = a.solve();
        SolveResult rb = b.solve();
        ASSERT_EQ(ra, rb);
        ASSERT_EQ(a.conflicts(), b.conflicts());
        ASSERT_EQ(a.decisions(), b.decisions());
        ASSERT_EQ(a.propagations(), b.propagations());
        if (ra == SolveResult::Sat) {
            for (Var v = 1; v < static_cast<Var>(f.nVars) + 1; v++) {
                ASSERT_EQ(a.modelValue(mkLit(v)),
                          b.modelValue(mkLit(v)));
            }
        }
    }
}

TEST(SatSolver, UnitPropagationChainsToUnsat)
{
    CdclSolver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.unit(mkLit(a));
    s.binary(~mkLit(a), mkLit(b));   // a -> b
    s.binary(~mkLit(b), mkLit(c));   // b -> c
    s.unit(~mkLit(c));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    // The clause set is unsatisfiable on its own: empty core.
    EXPECT_TRUE(s.failedAssumptions().empty());
    EXPECT_FALSE(s.okay());
}

TEST(SatSolver, FailedAssumptionCoreIsMinimalHere)
{
    CdclSolver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar(),
        d = s.newVar();
    // a and b are jointly inconsistent; c and d are free.
    s.binary(~mkLit(a), ~mkLit(b));
    SolveResult r =
        s.solve({mkLit(c), mkLit(a), mkLit(d), mkLit(b)});
    ASSERT_EQ(r, SolveResult::Unsat);
    const std::vector<Lit> &core = s.failedAssumptions();
    // The core must name a and b and must not blame c or d.
    EXPECT_EQ(core.size(), 2u);
    for (Lit l : core)
        EXPECT_TRUE(l.var() == a || l.var() == b);
    // The same solver stays usable and consistent afterwards.
    EXPECT_EQ(s.solve({mkLit(c), mkLit(a), mkLit(d)}),
              SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(mkLit(a)));
    EXPECT_FALSE(s.modelValue(mkLit(b)));
}

TEST(SatSolver, ConstantTrueVarIsWired)
{
    CdclSolver s;
    // Var 0 is reserved constant-true by construction.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(kTrue));
    EXPECT_FALSE(s.modelValue(kFalse));
    EXPECT_EQ(s.solve({kFalse}), SolveResult::Unsat);
    ASSERT_EQ(s.failedAssumptions().size(), 1u);
    EXPECT_EQ(s.failedAssumptions()[0], kFalse);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown)
{
    // A hard pigeonhole-style instance the solver cannot finish in
    // one conflict: budget exhaustion must surface as Unknown, never
    // as a verdict.
    CdclSolver s;
    const int holes = 7;
    std::vector<std::vector<Var>> p(holes + 1,
                                    std::vector<Var>(holes));
    for (int i = 0; i <= holes; i++)
        for (int j = 0; j < holes; j++)
            p[i][j] = s.newVar();
    for (int i = 0; i <= holes; i++) {
        std::vector<Lit> cl;
        for (int j = 0; j < holes; j++)
            cl.push_back(mkLit(p[i][j]));
        s.addClause(cl.data(), cl.size());
    }
    for (int j = 0; j < holes; j++)
        for (int i = 0; i <= holes; i++)
            for (int k = i + 1; k <= holes; k++)
                s.binary(~mkLit(p[i][j]), ~mkLit(p[k][j]));
    EXPECT_EQ(s.solve({}, 1), SolveResult::Unknown);
    // With no budget the verdict lands (pigeonhole: UNSAT).
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, CnfContainerRoundTripsThroughSolver)
{
    // Build a formula in the Cnf container, replay it into a solver,
    // and check the verdict — the export path and the solve path must
    // see the same formula.
    Cnf cnf;
    Var a = cnf.newVar(), b = cnf.newVar();
    cnf.binary(mkLit(a), mkLit(b));
    cnf.binary(~mkLit(a), mkLit(b));
    cnf.unit(~mkLit(b));
    CdclSolver s;
    while (s.numVars() < cnf.numVars())
        s.newVar();
    for (size_t i = 0; i < cnf.numClauses(); i++)
        s.addClause(cnf.clauseLits(i), cnf.clauseSize(i));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

} // namespace
} // namespace bespoke::sat
