/**
 * @file
 * Interchange round-trip identity tests.
 *
 * The JSON format must reproduce a netlist *exactly* (ids, ports,
 * debug names) and serialize deterministically; the Verilog
 * export/import round trip renumbers gates but must preserve the
 * design up to isomorphism — same canonical form, same contentHash().
 * Both properties are pinned on the generated cores and on fuzzed
 * random netlists, and contentHash() is checked to be invariant under
 * renumbering and sensitive to every field that defines the design.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/bespoke/equiv_check.hh"
#include "src/cpu/bsp430.hh"
#include "src/io/isomorphism.hh"
#include "src/io/netlist_json.hh"
#include "src/io/verilog_import.hh"
#include "src/netlist/verilog_export.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

Module
randModule(Rng &rng)
{
    return static_cast<Module>(rng.below(kNumModules));
}

/**
 * Random DAG of library cells: bus and scalar inputs, shared ties,
 * mixed drives/modules/reset values, flop feedback cycles, dead
 * logic, and debug names — everything the interchange must carry.
 */
Netlist
randomNetlist(Rng &rng)
{
    Netlist nl;
    std::vector<GateId> pool;

    int nin = rng.range(1, 3);
    for (int i = 0; i < nin; i++) {
        if (rng.chance(1, 2)) {
            int w = rng.range(2, 6);
            for (int b = 0; b < w; b++)
                pool.push_back(
                    nl.addInput("in" + std::to_string(i) + "[" +
                                std::to_string(b) + "]"));
        } else {
            pool.push_back(nl.addInput("si" + std::to_string(i)));
        }
    }
    if (rng.chance(1, 2))
        pool.push_back(nl.tie(false, randModule(rng)));
    if (rng.chance(1, 2))
        pool.push_back(nl.tie(true, randModule(rng)));

    static const CellType kComb[] = {
        CellType::BUF,   CellType::INV,   CellType::AND2,
        CellType::AND3,  CellType::OR2,   CellType::OR3,
        CellType::NAND2, CellType::NAND3, CellType::NOR2,
        CellType::NOR3,  CellType::XOR2,  CellType::XNOR2,
        CellType::MUX2,  CellType::AOI21, CellType::OAI21,
    };

    std::vector<GateId> flops;
    int ngates = rng.range(15, 60);
    for (int i = 0; i < ngates; i++) {
        CellType type;
        if (rng.chance(1, 5)) {
            type = rng.chance(1, 2) ? CellType::DFF : CellType::DFFE;
        } else {
            type = kComb[rng.below(sizeof(kComb) / sizeof(kComb[0]))];
        }
        GateId in[3] = {kNoGate, kNoGate, kNoGate};
        for (int p = 0; p < cellNumInputs(type); p++)
            in[p] = pool[rng.below(static_cast<uint32_t>(pool.size()))];
        GateId id = nl.addGate(type, randModule(rng), in[0], in[1],
                               in[2]);
        nl.gateRef(id).drive = static_cast<Drive>(rng.below(3));
        if (cellSequential(type)) {
            if (rng.chance(1, 2))
                nl.setResetValue(id, true);
            flops.push_back(id);
        }
        if (rng.chance(1, 8))
            nl.setName(id, "dbg" + std::to_string(id));
        pool.push_back(id);
    }

    // Sequential feedback: rewire some flop D pins forward in the
    // pool. Flops are sources, so this cannot create a comb loop.
    for (GateId f : flops) {
        if (rng.chance(1, 2))
            nl.setFanin(
                f, 0,
                pool[rng.below(static_cast<uint32_t>(pool.size()))]);
    }

    int nout = rng.range(1, 4);
    for (int i = 0; i < nout; i++) {
        GateId src = pool[rng.below(static_cast<uint32_t>(pool.size()))];
        nl.addOutput("out" + std::to_string(i), src,
                     randModule(rng));
    }
    return nl;
}

/** Rebuild `src` under a random gate-id permutation. */
Netlist
renumbered(const Netlist &src, Rng &rng)
{
    std::vector<GateId> perm(src.size());
    for (GateId i = 0; i < src.size(); i++)
        perm[i] = i;
    for (size_t i = perm.size(); i > 1; i--)
        std::swap(perm[i - 1],
                  perm[rng.below(static_cast<uint32_t>(i))]);

    std::vector<GateId> newId(src.size());
    for (GateId n = 0; n < src.size(); n++)
        newId[perm[n]] = n;

    Netlist out;
    for (GateId n = 0; n < src.size(); n++) {
        const Gate &g = src.gate(perm[n]);
        GateId in[3] = {kNoGate, kNoGate, kNoGate};
        for (int p = 0; p < g.numInputs(); p++)
            in[p] = newId[g.in[p]];
        GateId id = out.addGate(g.type, g.module, in[0], in[1], in[2]);
        out.gateRef(id).drive = g.drive;
        if (g.resetValue)
            out.setResetValue(id, true);
    }
    for (const auto &[name, id] : src.ports())
        out.registerPort(name, newId[id]);
    return out;
}

/** Exact (id-level) equality, as the JSON round trip must provide. */
void
expectExactlyEqual(const Netlist &a, const Netlist &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (GateId i = 0; i < a.size(); i++) {
        const Gate &ga = a.gate(i);
        const Gate &gb = b.gate(i);
        ASSERT_EQ(ga.type, gb.type) << "gate " << i;
        ASSERT_EQ(ga.drive, gb.drive) << "gate " << i;
        ASSERT_EQ(ga.module, gb.module) << "gate " << i;
        ASSERT_EQ(ga.resetValue, gb.resetValue) << "gate " << i;
        for (int p = 0; p < ga.numInputs(); p++)
            ASSERT_EQ(ga.in[p], gb.in[p])
                << "gate " << i << " pin " << p;
    }
    ASSERT_EQ(a.ports().size(), b.ports().size());
    for (const auto &[name, id] : a.ports()) {
        ASSERT_TRUE(b.hasPort(name)) << name;
        ASSERT_EQ(b.port(name), id) << name;
    }
    ASSERT_EQ(a.gateNames().size(), b.gateNames().size());
    for (const auto &[id, name] : a.gateNames())
        ASSERT_EQ(b.name(id), name) << "gate " << id;
    ASSERT_EQ(a.contentHash(), b.contentHash());
}

void
checkJsonRoundTrip(const Netlist &nl)
{
    std::string text = netlistToJsonText(nl);
    NetlistJsonResult res = netlistFromJsonText(text);
    ASSERT_TRUE(res.ok) << res.error;
    expectExactlyEqual(nl, res.netlist);
    // Deterministic serialization: same netlist -> same bytes.
    EXPECT_EQ(text, netlistToJsonText(res.netlist));
}

void
checkVerilogRoundTrip(const Netlist &nl)
{
    std::ostringstream os;
    exportVerilog(nl, "dut", os);
    VerilogImportResult res = importVerilog(os.str());
    ASSERT_TRUE(res.ok) << res.format("<export>");
    EXPECT_EQ(res.moduleName, "dut");

    IsoResult iso = netlistIsomorphic(nl, res.netlist);
    EXPECT_TRUE(iso.isomorphic) << iso.why;
    EXPECT_EQ(nl.contentHash(), res.netlist.contentHash());

    // The bespoke_module attributes must carry the per-module
    // breakdown across the round trip.
    for (int m = 0; m < kNumModules; m++) {
        Module mod = static_cast<Module>(m);
        EXPECT_EQ(nl.moduleStats(mod).numCells,
                  res.netlist.moduleStats(mod).numCells)
            << moduleName(mod);
    }
}

TEST(IoRoundTrip, JsonExactOnCores)
{
    checkJsonRoundTrip(buildBsp430());
    checkJsonRoundTrip(buildBsp430(nullptr, CpuConfig::extended()));
}

TEST(IoRoundTrip, VerilogIsomorphicOnCores)
{
    checkVerilogRoundTrip(buildBsp430());
    checkVerilogRoundTrip(buildBsp430(nullptr, CpuConfig::extended()));
}

class IoRoundTripFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(IoRoundTripFuzz, JsonExact)
{
    Rng rng(GetParam());
    for (int t = 0; t < 10; t++)
        checkJsonRoundTrip(randomNetlist(rng));
}

TEST_P(IoRoundTripFuzz, VerilogIsomorphic)
{
    Rng rng(GetParam() + 1000);
    for (int t = 0; t < 10; t++)
        checkVerilogRoundTrip(randomNetlist(rng));
}

TEST_P(IoRoundTripFuzz, ContentHashInvariantUnderRenumbering)
{
    Rng rng(GetParam() + 2000);
    for (int t = 0; t < 10; t++) {
        Netlist nl = randomNetlist(rng);
        Netlist shuffled = renumbered(nl, rng);
        EXPECT_EQ(nl.contentHash(), shuffled.contentHash());
        IsoResult iso = netlistIsomorphic(nl, shuffled);
        EXPECT_TRUE(iso.isomorphic) << iso.why;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u));

/** Every field that defines the design must show up in the hash. */
TEST(IoRoundTrip, MutationsChangeHashAndBreakIsomorphism)
{
    Rng rng(99);
    Netlist nl = randomNetlist(rng);
    uint64_t h0 = nl.contentHash();

    auto findGate = [&](auto &&pred) -> GateId {
        for (GateId i = 0; i < nl.size(); i++) {
            if (pred(nl.gate(i)))
                return i;
        }
        return kNoGate;
    };
    auto expectChanged = [&](Netlist &mut, const char *what) {
        EXPECT_NE(mut.contentHash(), h0) << what;
        EXPECT_FALSE(netlistIsomorphic(nl, mut).isomorphic) << what;
    };

    {
        GateId g = findGate([](const Gate &g) {
            return g.type == CellType::NAND2 || g.type == CellType::AND2 ||
                   g.type == CellType::OR2 || g.type == CellType::XOR2;
        });
        if (g != kNoGate) {
            // Same arity, different function.
            Netlist mut = nl;
            mut.gateRef(g).type = CellType::NOR2;
            expectChanged(mut, "cell type");
        }
    }
    {
        GateId g = findGate(
            [](const Gate &g) { return !cellPseudo(g.type); });
        ASSERT_NE(g, kNoGate);
        Netlist mut = nl;
        mut.gateRef(g).drive =
            nl.gate(g).drive == Drive::X1 ? Drive::X4 : Drive::X1;
        expectChanged(mut, "drive strength");
    }
    {
        GateId g = findGate(
            [](const Gate &g) { return !cellPseudo(g.type); });
        Netlist mut = nl;
        mut.gateRef(g).module = nl.gate(g).module == Module::Alu
                                    ? Module::RF
                                    : Module::Alu;
        expectChanged(mut, "module label");
    }
    {
        GateId g = findGate(
            [](const Gate &g) { return cellSequential(g.type); });
        if (g != kNoGate) {
            Netlist mut = nl;
            mut.gateRef(g).resetValue = !nl.gate(g).resetValue;
            expectChanged(mut, "reset value");
        }
    }
    {
        GateId g = findGate([](const Gate &g) {
            return g.numInputs() >= 2 && g.in[0] != g.in[1];
        });
        if (g != kNoGate) {
            Netlist mut = nl;
            GateId a = nl.gate(g).in[0];
            mut.setFanin(g, 0, nl.gate(g).in[1]);
            mut.setFanin(g, 1, a);
            expectChanged(mut, "pin order");
        }
    }
}

/**
 * The pseudo-gate module labels are bookkeeping the interchange does
 * not carry; they must NOT affect the identity.
 */
TEST(IoRoundTrip, PseudoGateModulesExcludedFromIdentity)
{
    Rng rng(123);
    Netlist nl = randomNetlist(rng);
    Netlist mut = renumbered(nl, rng);
    for (GateId i = 0; i < mut.size(); i++) {
        if (cellPseudo(mut.gate(i).type))
            mut.gateRef(i).module = Module::Dbg;
    }
    EXPECT_EQ(nl.contentHash(), mut.contentHash());
    EXPECT_TRUE(netlistIsomorphic(nl, mut).isomorphic);
}

/**
 * End-to-end wiring into the verifier: a core that went out through
 * Verilog and came back in must be symbolically equivalent to the
 * freshly built one on a real program.
 */
TEST(IoRoundTrip, ImportedCoreIsSymbolicallyEquivalent)
{
    Netlist core = buildBsp430();
    std::ostringstream os;
    exportVerilog(core, "bsp430", os);
    VerilogImportResult res = importVerilog(os.str());
    ASSERT_TRUE(res.ok) << res.format("<export>");

    const Workload &w = workloadByName("div");
    AsmProgram prog = w.assembleProgram();
    EquivResult eq =
        checkSymbolicEquivalence(core, res.netlist, prog);
    EXPECT_TRUE(eq.equivalent) << eq.firstMismatch;
    EXPECT_TRUE(eq.completed);
}

/** Structural idioms beyond what exportVerilog() emits (Yosys-style). */
TEST(IoRoundTrip, AcceptsStructuralIdioms)
{
    // Non-ANSI ports, body direction decls, constants on pins,
    // instance output driving a port bit directly, skipped foreign
    // attributes, multi-name wire decls.
    const char *text = R"(
module top (clk, rst_n, a, y, z);
  input clk;
  input rst_n;
  input [1:0] a;
  output [1:0] y;
  output z;
  wire w0, w1;
  (* src = "top.v:3", keep *)
  (* bespoke_module = "alu" *)
  NAND2_X2 u0 (.A(a[0]), .B(a[1]), .Y(w0));
  DFF_X1 #(.RVAL(1'b1)) u1 (.CLK(clk), .RSTN(rst_n), .D(w0), .Q(w1));
  assign y[0] = w1;
  XOR2_X1 u2 (.A(w1), .B(1'b1), .Y(y[1]));
  assign z = 1'b0;
endmodule
)";
    VerilogImportResult res = importVerilog(text);
    ASSERT_TRUE(res.ok) << res.format("<inline>");
    const Netlist &nl = res.netlist;

    // 2 inputs (clk/rst_n are implicit), 3 outputs, 3 cells + 2 ties.
    EXPECT_EQ(nl.inputIds().size(), 2u);
    EXPECT_EQ(nl.outputIds().size(), 3u);
    EXPECT_EQ(nl.moduleStats(Module::Alu).numCells, 1u);

    GateId dffId = nl.gate(nl.port("y[0]")).in[0]; // OUTPUT <- DFF
    const Gate &dff = nl.gate(dffId);
    EXPECT_EQ(dff.type, CellType::DFF);
    EXPECT_TRUE(dff.resetValue);
    const Gate &nand2 = nl.gate(dff.in[0]);
    EXPECT_EQ(nand2.type, CellType::NAND2);
    EXPECT_EQ(nand2.drive, Drive::X2);
    EXPECT_EQ(nand2.module, Module::Alu);
    EXPECT_EQ(nl.gate(nl.gate(nl.port("z")).in[0]).type,
              CellType::TIE0);

    // And it round-trips through our own exporter.
    checkVerilogRoundTrip(nl);
    checkJsonRoundTrip(nl);
}

} // namespace
} // namespace bespoke
