/**
 * @file
 * Tests for the general-purpose worker pool: task execution, drain
 * semantics (including tasks that post further tasks), and the SPMD
 * runPerWorker helper.
 */

#include <atomic>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "src/util/worker_pool.hh"

namespace bespoke
{
namespace
{

TEST(WorkerPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(WorkerPool::defaultThreadCount(), 1);
    WorkerPool pool(0);
    EXPECT_EQ(pool.size(), WorkerPool::defaultThreadCount());
}

TEST(WorkerPool, PostedTasksAllRun)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; i++)
        pool.post([&] { count.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(count.load(), 200);
}

TEST(WorkerPool, DrainWaitsForTasksPostedByTasks)
{
    WorkerPool pool(3);
    std::atomic<int> count{0};
    // A two-level wave: drain() must wait for the children too.
    for (int i = 0; i < 8; i++) {
        pool.post([&] {
            count.fetch_add(1);
            for (int j = 0; j < 4; j++)
                pool.post([&] { count.fetch_add(1); });
        });
    }
    pool.drain();
    EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(WorkerPool, RunPerWorkerCoversEveryIndexAndBlocks)
{
    WorkerPool pool(4);
    std::mutex m;
    std::set<int> seen;
    pool.runPerWorker([&](int i) {
        std::lock_guard<std::mutex> lk(m);
        seen.insert(i);
    });
    EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));
}

TEST(WorkerPool, ReusableAfterDrain)
{
    WorkerPool pool(2);
    std::atomic<int> count{0};
    pool.post([&] { count.fetch_add(1); });
    pool.drain();
    pool.post([&] { count.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(count.load(), 2);
}

} // namespace
} // namespace bespoke
