/**
 * @file
 * Tests for the general-purpose worker pool: task execution, drain
 * semantics (including tasks that post further tasks), and the SPMD
 * runPerWorker helper. Plus the ThreadBudget slot-leasing layer the
 * job scheduler shares analysis workers through: clamping, RAII
 * release, and strict-FIFO grant order.
 */

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/worker_pool.hh"

namespace bespoke
{
namespace
{

TEST(WorkerPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(WorkerPool::defaultThreadCount(), 1);
    WorkerPool pool(0);
    EXPECT_EQ(pool.size(), WorkerPool::defaultThreadCount());
}

TEST(WorkerPool, PostedTasksAllRun)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; i++)
        pool.post([&] { count.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(count.load(), 200);
}

TEST(WorkerPool, DrainWaitsForTasksPostedByTasks)
{
    WorkerPool pool(3);
    std::atomic<int> count{0};
    // A two-level wave: drain() must wait for the children too.
    for (int i = 0; i < 8; i++) {
        pool.post([&] {
            count.fetch_add(1);
            for (int j = 0; j < 4; j++)
                pool.post([&] { count.fetch_add(1); });
        });
    }
    pool.drain();
    EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(WorkerPool, RunPerWorkerCoversEveryIndexAndBlocks)
{
    WorkerPool pool(4);
    std::mutex m;
    std::set<int> seen;
    pool.runPerWorker([&](int i) {
        std::lock_guard<std::mutex> lk(m);
        seen.insert(i);
    });
    EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));
}

TEST(WorkerPool, ReusableAfterDrain)
{
    WorkerPool pool(2);
    std::atomic<int> count{0};
    pool.post([&] { count.fetch_add(1); });
    pool.drain();
    pool.post([&] { count.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadBudget, ZeroMeansDefaultThreadCount)
{
    ThreadBudget budget(0);
    EXPECT_EQ(budget.total(), WorkerPool::defaultThreadCount());
    EXPECT_EQ(budget.free(), budget.total());
}

TEST(ThreadBudget, AcquireClampsAndReleasesOnScopeExit)
{
    ThreadBudget budget(4);
    {
        // An over-wide ask is clamped to the whole budget instead of
        // deadlocking on slots that can never exist.
        ThreadLease lease = budget.acquire(64);
        EXPECT_EQ(lease.threads(), 4);
        EXPECT_EQ(budget.free(), 0);
    }
    EXPECT_EQ(budget.free(), 4);
    ThreadLease lease = budget.acquire(0);  // clamped up to 1
    EXPECT_EQ(lease.threads(), 1);
    EXPECT_EQ(budget.free(), 3);
    lease.release();
    EXPECT_EQ(budget.free(), 4);
    lease.release();  // idempotent
    EXPECT_EQ(budget.free(), 4);
}

TEST(ThreadBudget, MoveTransfersOwnership)
{
    ThreadBudget budget(2);
    ThreadLease a = budget.acquire(2);
    ThreadLease b = std::move(a);
    EXPECT_EQ(a.threads(), 0);
    EXPECT_EQ(b.threads(), 2);
    a.release();  // empty: must not double-release
    EXPECT_EQ(budget.free(), 0);
    b.release();
    EXPECT_EQ(budget.free(), 2);
}

TEST(ThreadBudget, FifoServesWideRequestBeforeLaterNarrowOnes)
{
    ThreadBudget budget(4);
    ThreadLease held = budget.acquire(3);

    std::mutex m;
    std::vector<int> order;
    std::thread wide([&] {
        ThreadLease l = budget.acquire(4);
        std::lock_guard<std::mutex> lk(m);
        order.push_back(l.threads());
    });
    // Queue the narrow request strictly after the wide one.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread narrow([&] {
        ThreadLease l = budget.acquire(1);
        std::lock_guard<std::mutex> lk(m);
        order.push_back(l.threads());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    {
        // One slot is free, but the narrow ask must queue behind the
        // waiting wide one (strict FIFO = no starvation of wide jobs).
        std::lock_guard<std::mutex> lk(m);
        EXPECT_TRUE(order.empty());
    }
    held.release();
    wide.join();
    narrow.join();
    EXPECT_EQ(order, (std::vector<int>{4, 1}));
}

} // namespace
} // namespace bespoke
