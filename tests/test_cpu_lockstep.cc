/**
 * @file
 * Lock-step verification of the gate-level bsp430 core against the ISS
 * golden model: after every retired instruction, the architectural
 * state (PC, registers, flags) must match, and at halt the full data
 * RAM must match.
 */

#include <deque>

#include <gtest/gtest.h>

#include "src/cpu/bsp430.hh"
#include "src/isa/assembler.hh"
#include "src/iss/iss.hh"
#include "src/sim/soc.hh"

namespace bespoke
{
namespace
{

struct CpuFixture
{
    CpuProbes probes;
    Netlist netlist;

    CpuFixture() : netlist(buildBsp430(&probes)) {}
};

CpuFixture &
cpu()
{
    static CpuFixture fixture;
    return fixture;
}

AsmProgram &
prog(const std::string &body)
{
    static std::deque<AsmProgram> keep;
    keep.push_back(assemble(std::string("        .org 0xf000\n") + body +
                            "\n        .org 0xfffe\n        .word 0xf000\n"));
    return keep.back();
}

uint16_t
knownWord(const GateSim &sim, const Bus &bus)
{
    SWord w = sim.busWord(bus);
    EXPECT_TRUE(w.fullyKnown()) << "bus has X bits: " << w.toString();
    return w.val;
}

/** Run gate-level and ISS in lock-step until the ISS halts. */
void
runLockstep(const std::string &body, uint16_t gpio_in = 0,
            uint64_t max_instr = 20000)
{
    AsmProgram &p = prog(body);
    Iss iss(p);
    iss.setGpioIn(gpio_in);
    Soc soc(cpu().netlist, p, /*ram_unknown=*/false);
    soc.setGpioIn(SWord::of(gpio_in));
    soc.setIrqExt(Logic::Zero);

    const CpuProbes &pr = cpu().probes;

    // True when the freshly latched FSM state is FETCH, i.e. the
    // previous instruction fully retired and nothing of the next one
    // has executed yet.
    auto at_fetch = [&] {
        return soc.sim().busWord(pr.stateReg) ==
               SWord(static_cast<uint16_t>(CpuState::Fetch), 0x001f);
    };

    // Advance through the reset sequence to the first FETCH boundary.
    for (int i = 0; i < 10 && !at_fetch(); i++)
        soc.cycle();
    ASSERT_TRUE(at_fetch()) << "core never reached FETCH";

    for (uint64_t n = 0; n < max_instr; n++) {
        uint16_t iss_pc_before = iss.pc();
        StepResult r = iss.step();

        // Advance the core one full instruction (FETCH to FETCH).
        int guard = 0;
        do {
            soc.cycle();
            ASSERT_LT(++guard, 64) << "instruction did not complete";
        } while (!at_fetch());

        uint16_t gate_pc = knownWord(soc.sim(), pr.pc);
        ASSERT_EQ(gate_pc, iss.pc())
            << "PC mismatch after insn at 0x" << std::hex
            << iss_pc_before << " ("
            << decode(p.romWord(iss_pc_before)).toString() << ")";
        for (int reg = 0; reg < 16; reg++) {
            if (pr.regs[reg].empty())
                continue;
            ASSERT_EQ(knownWord(soc.sim(), pr.regs[reg]), iss.reg(reg))
                << "r" << reg << " mismatch after insn at 0x" << std::hex
                << iss_pc_before << " ("
                << decode(p.romWord(iss_pc_before)).toString() << ")";
        }
        uint16_t gate_sr =
            (soc.sim().value(pr.flagC) == Logic::One ? kFlagC : 0) |
            (soc.sim().value(pr.flagZ) == Logic::One ? kFlagZ : 0) |
            (soc.sim().value(pr.flagN) == Logic::One ? kFlagN : 0) |
            (soc.sim().value(pr.flagGIE) == Logic::One ? kFlagGIE : 0) |
            (soc.sim().value(pr.flagV) == Logic::One ? kFlagV : 0);
        ASSERT_EQ(gate_sr, iss.sr() & (kFlagC | kFlagZ | kFlagN |
                                       kFlagGIE | kFlagV))
            << "SR mismatch after insn at 0x" << std::hex << iss_pc_before
            << " (" << decode(p.romWord(iss_pc_before)).toString() << ")";

        if (r == StepResult::Halted)
            break;
        ASSERT_EQ(r, StepResult::Ok);
        ASSERT_LT(n + 1, max_instr) << "program never halted";
    }

    // Full RAM equivalence at halt.
    for (uint16_t a = kRamBase; a < kRamBase + kRamSize; a += 2) {
        SWord w = soc.ramWord(a);
        ASSERT_TRUE(w.fullyKnown()) << "RAM X at 0x" << std::hex << a;
        ASSERT_EQ(w.val, iss.readWord(a))
            << "RAM mismatch at 0x" << std::hex << a;
    }
    // Output port equivalence.
    EXPECT_EQ(knownWord(soc.sim(), soc.sim().netlist().bus("gpio_out",
                                                           16)),
              iss.gpioOut());
}

TEST(CpuLockstep, NetlistSanity)
{
    const Netlist &nl = cpu().netlist;
    NetlistStats s = nl.stats();
    // openMSP430-class design: thousands of cells, hundreds of flops.
    EXPECT_GT(s.numCells, 3000u);
    EXPECT_LT(s.numCells, 20000u);
    EXPECT_GT(s.numSequential, 300u);
    // Every module of the default configuration is populated.
    for (int m = 0; m < kNumModules; m++) {
        if (static_cast<Module>(m) == Module::Glue ||
            static_cast<Module>(m) == Module::Timer ||
            static_cast<Module>(m) == Module::Uart) {
            continue;
        }
        EXPECT_GT(nl.moduleStats(static_cast<Module>(m)).numCells, 0u)
            << moduleName(static_cast<Module>(m));
    }
}

TEST(CpuLockstep, BasicMovAdd)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x1234, r5
        mov r5, r6
        add r5, r6
        add #1, r6
        sub #0x34, r6
halt:   jmp halt
    )");
}

TEST(CpuLockstep, AllArithOps)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x7fff, r4
        mov #0xffff, r5
        mov #1, r6
        add r5, r4
        addc r6, r4
        sub r5, r4
        subc r6, r4
        cmp r4, r5
        and #0x0f0f, r4
        bit #8, r4
        bic #3, r4
        bis #0x30, r4
        xor #0xffff, r4
halt:   jmp halt
    )");
}

TEST(CpuLockstep, ByteOps)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x1234, r5
        mov.b #0xff, r5
        mov #0xff80, r6
        add.b #1, r6
        mov #0x00f0, r7
        and.b #0x3c, r7
        xor.b #0xff, r7
        sub.b #5, r7
halt:   jmp halt
    )");
}

TEST(CpuLockstep, MemoryAddressingModes)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x1111, &0x0210
        mov #0x0210, r4
        mov @r4, r5
        mov #0x2222, 2(r4)
        mov 2(r4), r6
        mov @r4+, r7
        mov @r4+, r8
        mov.b #0xab, &0x0220
        mov.b &0x0220, r9
        add &0x0210, r5
        add r5, &0x0210
        mov.b #0x7f, &0x0221
        add.b #1, &0x0221
        mov &0x0220, r10
halt:   jmp halt
    )");
}

TEST(CpuLockstep, JumpsAndLoops)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #5, r5
        mov #0, r6
loop:   add r5, r6
        dec r5
        jnz loop
        mov #0x8000, r7
        tst r7
        jge pos
        mov #1, r8
        jmp done
pos:    mov #2, r8
done:   cmp #15, r6
        jeq good
        mov #0xdead, r9
good:
halt:   jmp halt
    )");
}

TEST(CpuLockstep, AllConditionalJumps)
{
    runLockstep(R"(
        mov #0x0280, sp
        clr r10
        ; JC/JNC
        mov #0xffff, r4
        add #1, r4
        jc c1
        jmp fail
c1:     add #1, r4
        jnc c2
        jmp fail
        ; JN / JGE / JL
c2:     mov #0x8000, r5
        tst r5
        jn c3
        jmp fail
c3:     mov #3, r5
        cmp #5, r5
        jl c4
        jmp fail
c4:     cmp #2, r5
        jge c5
        jmp fail
c5:     mov #1, r10
halt:   jmp halt
fail:   mov #0xbad, r10
        jmp halt
    )");
}

TEST(CpuLockstep, StackCallRet)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0xbeef, r5
        push r5
        clr r5
        pop r5
        call #sub1
        push #0x1234
        pop r7
        jmp halt
sub1:   mov #0x55, r6
        push r6
        pop r8
        ret
halt:   jmp halt
    )");
}

TEST(CpuLockstep, ShiftsSwapSignExtend)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x8003, r5
        rra r5
        mov #0x8000, r6
        setc
        rrc r6
        mov #0x1234, r7
        swpb r7
        mov #0x0080, r8
        sxt r8
        mov #0x41, r9
        rra.b r9
        mov #0x80, r10
        setc
        rrc.b r10
halt:   jmp halt
    )");
}

TEST(CpuLockstep, HardwareMultiplier)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #1234, &0x0130
        mov #5678, &0x0134
        nop
        mov &0x0136, r5
        mov &0x0138, r6
        mov #0xffff, &0x0132
        mov #7, &0x0134
        nop
        mov &0x0136, r7
        mov &0x0138, r8
        mov #0x8000, &0x0132
        mov #0x8000, &0x0134
        nop
        mov &0x0136, r9
        mov &0x0138, r10
halt:   jmp halt
    )");
}

TEST(CpuLockstep, GpioReadWrite)
{
    runLockstep(R"(
        mov &0x0000, r5
        add #1, r5
        mov r5, &0x0002
        mov &0x0002, r6
        xor #0xffff, r6
        mov r6, &0x0002
halt:   jmp halt
    )",
                0x1233);
}

TEST(CpuLockstep, DebugUnit)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x0240, &0x0032
        mov #1, &0x0030
        mov #0x1111, &0x0240
        mov &0x0240, r5
        mov #0x2222, &0x0242
        mov &0x0030, r6
        mov &0x0034, r7
halt:   jmp halt
    )");
}

TEST(CpuLockstep, RegisterIndirectControl)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #target, r5
        br r5
        mov #0xbad, r10
target: mov #1, r10
        mov #table, r6
        mov @r6+, r7
        mov @r6, r8
halt:   jmp halt
table:  .word 0x1357
        .word 0x2468
    )");
}

TEST(CpuLockstep, SrAsDestination)
{
    runLockstep(R"(
        mov #0x0280, sp
        mov #0x0107, sr        ; set C,Z,N,V directly
        mov sr, r5
        bis #8, sr             ; set GIE
        mov sr, r6
        bic #8, sr
        clr sr
halt:   jmp halt
    )");
}

} // namespace
} // namespace bespoke
