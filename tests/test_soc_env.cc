/**
 * @file
 * Tests of the behavioral SoC environment: synchronous memory timing,
 * conservative handling of symbolic addresses/enables, environment
 * state snapshot/merge, and drive-strength preservation through
 * transforms (regression for a bug where compact() silently reset
 * every cell to X1).
 */

#include <gtest/gtest.h>

#include "src/bespoke/flow.hh"
#include "src/cpu/bsp430.hh"
#include "src/sim/soc.hh"
#include "src/transform/rewrite.hh"

namespace bespoke
{
namespace
{

const Netlist &
core()
{
    static Netlist nl = buildBsp430();
    return nl;
}

AsmProgram
tinyProg()
{
    return assemble(R"(
        .org 0xf000
start:  mov #0x0a00, sp
        mov #0x1234, &0x0300
        mov &0x0300, r5
halt:   jmp halt
        .org 0xfffe
        .word 0xf000
    )");
}

TEST(SocEnv, RamStartsUnknownInSymbolicMode)
{
    AsmProgram p = tinyProg();
    Soc symbolic(core(), p, /*ram_unknown=*/true);
    Soc concrete(core(), p, /*ram_unknown=*/false);
    EXPECT_TRUE(symbolic.ramWord(0x0300).anyX());
    EXPECT_TRUE(concrete.ramWord(0x0300).fullyKnown());
    EXPECT_EQ(concrete.ramWord(0x0300).val, 0);
}

TEST(SocEnv, SymbolicWriteAddressSmearsRam)
{
    // Direct check of the conservative write rule via EnvState merge:
    // a write through an unknown address must widen every word that
    // could have been hit.
    AsmProgram p = assemble(R"(
        .org 0xf000
start:  mov #0x0a00, sp
        mov &0x0300, r4      ; X pointer
        mov #0x5a5a, 0(r4)   ; store through X address
halt:   jmp halt
        .org 0xfffe
        .word 0xf000
    )");
    Soc soc(core(), p, /*ram_unknown=*/false);
    soc.setGpioIn(SWord::of(0));
    soc.setIrqExt(Logic::Zero);
    // RAM concrete-zero but the pointer cell is X.
    soc.pokeRamWord(0x0300, SWord::allX());
    for (int c = 0; c < 60; c++)
        soc.cycle();
    // Every RAM word must now admit 0x5a5a as a possible value: no
    // word may be *known* to differ in bits where 0x5a5a differs
    // from its old value 0x0000.
    int widened = 0;
    for (uint16_t a = kRamBase; a < kRamBase + kRamSize; a += 2) {
        SWord w = soc.ramWord(a);
        // Bits where the write would have changed 0 -> 1 cannot
        // remain known-0.
        EXPECT_EQ(w.known & 0x5a5a & ~w.val, 0)
            << "word 0x" << std::hex << a << " = " << w.toString();
        if (w.anyX())
            widened++;
    }
    EXPECT_GT(widened, 100);
}

TEST(SocEnv, EnvStateMergeAndSubstate)
{
    EnvState a, b;
    a.ram = {SWord::of(1), SWord::of(2)};
    a.rdata = SWord::of(7);
    b.ram = {SWord::of(1), SWord::of(3)};
    b.rdata = SWord::of(7);
    EnvState m = EnvState::merge(a, b);
    EXPECT_TRUE(a.substateOf(m));
    EXPECT_TRUE(b.substateOf(m));
    EXPECT_EQ(m.ram[0], SWord::of(1));
    EXPECT_TRUE(m.ram[1].anyX());
    EXPECT_FALSE(m.substateOf(a));
}

TEST(SocEnv, MemoryReadLatencyIsOneCycle)
{
    // The core's whole instruction sequencing depends on this; check
    // it at the environment level: rdata changes only on the cycle
    // after a read request was sampled.
    AsmProgram p = tinyProg();
    Soc soc(core(), p, false);
    soc.setGpioIn(SWord::of(0));
    soc.setIrqExt(Logic::Zero);
    // Cycle 0 issues the reset-vector read; rdata is X during it and
    // becomes the vector in cycle 1.
    EXPECT_TRUE(soc.envState().rdata.anyX());
    soc.cycle();
    EXPECT_TRUE(soc.envState().rdata.fullyKnown());
    EXPECT_EQ(soc.envState().rdata.val, 0xf000);
}

TEST(Transforms, DrivesSurviveCompact)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.inv(a);
    GateId h = b.buf(g);
    GateId q = b.inv(h);
    nl.addOutput("o", q);
    nl.gateRef(g).drive = Drive::X4;
    nl.gateRef(q).drive = Drive::X2;

    RewriteResult rr = stripBuffers(nl);
    int x4 = 0, x2 = 0;
    for (const Gate &gg : rr.netlist.gates()) {
        x4 += gg.drive == Drive::X4;
        x2 += gg.drive == Drive::X2;
    }
    EXPECT_EQ(x4, 1);
    EXPECT_EQ(x2, 1);
}

TEST(Transforms, ResizingAfterCutReducesPower)
{
    // End-to-end regression: a bespoke design inheriting the sized
    // baseline's (now oversized) drivers must not consume less power
    // than the properly downsized design.
    FlowOptions o;
    o.powerInputsPerWorkload = 1;
    BespokeFlow flow(o);
    const Workload &w = workloadByName("binSearch");
    AnalysisResult r = flow.analyze(w);
    Netlist inherited = cutAndStitch(flow.baseline(), *r.activity);
    Netlist resized = inherited;
    sizeForLoads(resized, o.timing);
    DesignMetrics mi = flow.measure(inherited, {&w});
    DesignMetrics mr = flow.measure(resized, {&w});
    EXPECT_LE(mr.powerNominal.totalUW(), mi.powerNominal.totalUW());
    // Timing must still be met either way.
    EXPECT_LE(mr.criticalPathPs, flow.clockPeriodPs());
}

} // namespace
} // namespace bespoke
