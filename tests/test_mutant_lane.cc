/**
 * @file
 * Lane-per-mutant sweep equivalence (Tables 4/5 dynamic columns).
 *
 * mutantConcreteSweep batches every mutant x input pair onto bit-plane
 * lanes; the acceptance bar is that every verdict the table reports —
 * detected / undetected and the switching-power delta — is
 * bit-identical to running the same mutants one at a time through the
 * scalar gate runner (opts.forceScalar). The quick suite pins a
 * representative workload subset at the environment-selected plane
 * width (so the CI sanitizer shards cover 64- and 256-bit planes); the
 * full sweep across all 15 paper workloads and every generated mutant
 * runs when BESPOKE_NIGHTLY is set (nightly workflow).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/cpu/bsp430.hh"
#include "src/mutation/mutant_sweep.hh"
#include "src/mutation/mutation.hh"
#include "src/timing/sta.hh"
#include "src/verify/runner.hh"

namespace bespoke
{
namespace
{

const Netlist &
core()
{
    static Netlist nl = [] {
        Netlist n = buildBsp430();
        sizeForLoads(n);
        return n;
    }();
    return nl;
}

/**
 * Sweep `w`'s mutants scalar and lane-batched and require verdict
 * equality: same detected flag, same power delta, per mutant.
 */
void
expectLaneMatchesScalar(const Workload &w, size_t max_mutants,
                        int inputs_per_mutant, int plane_bits)
{
    SCOPED_TRACE(w.name + " @" + std::to_string(plane_bits) + "b");
    std::vector<Mutant> mutants = generateMutants(w);
    if (max_mutants && mutants.size() > max_mutants)
        mutants.resize(max_mutants);
    if (mutants.empty())
        return;  // unit workloads may offer nothing to mutate

    MutantPlanePrep prep(core(), w, mutants);

    MutantSweepOptions sopts;
    sopts.inputsPerMutant = inputs_per_mutant;

    sopts.forceScalar = true;
    std::vector<MutantVerdict> scalar = mutantConcreteSweep(prep, sopts);

    sopts.forceScalar = false;
    sopts.planeBits = plane_bits;
    std::vector<MutantVerdict> lane = mutantConcreteSweep(prep, sopts);

    ASSERT_EQ(scalar.size(), lane.size());
    ASSERT_EQ(scalar.size(), mutants.size());
    for (size_t i = 0; i < scalar.size(); i++) {
        EXPECT_EQ(scalar[i].detected, lane[i].detected)
            << "mutant " << i << " (" << mutants[i].from << " -> "
            << mutants[i].to << " at line " << mutants[i].sourceLine
            << ") verdict differs";
        // The lane path ingests the same toggle sequence the scalar
        // path observes, so the power numbers are exactly equal — not
        // merely close.
        EXPECT_EQ(scalar[i].powerDeltaPct, lane[i].powerDeltaPct)
            << "mutant " << i << " power delta differs";
    }
}

// Quick ctest slice: cheap workloads from the Table 4/5 set, a dozen
// mutants each, at the BESPOKE_PLANE_BITS-selected width.
TEST(MutantLane, QuickVerdictsMatchScalar)
{
    const int bits = resolvePlaneBits(0);
    for (const char *name : {"binSearch", "rle", "tea8"})
        expectLaneMatchesScalar(workloadByName(name), 6, 2, bits);
}

// A non-default width stays covered even without the environment.
TEST(MutantLane, QuickVerdictsMatchScalarWidePlane)
{
    expectLaneMatchesScalar(workloadByName("inSort"), 6, 2, 256);
}

// Full equivalence: every mutant of every paper workload, the bench's
// input count, both at one-word and multi-word planes. Minutes of
// scalar reference sweeps — nightly only.
TEST(MutantLane, FullSweepAllWorkloads)
{
    if (!std::getenv("BESPOKE_NIGHTLY"))
        GTEST_SKIP() << "full mutant equivalence runs in the nightly "
                        "workflow (set BESPOKE_NIGHTLY to force)";
    for (const Workload &w : workloads()) {
        expectLaneMatchesScalar(w, 0, 4, 64);
        expectLaneMatchesScalar(w, 0, 4, 256);
    }
}

} // namespace
} // namespace bespoke
