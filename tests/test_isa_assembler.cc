/**
 * @file
 * Unit tests for the BSP430 ISA encode/decode layer and the assembler.
 */

#include <gtest/gtest.h>

#include "src/isa/assembler.hh"
#include "src/isa/isa.hh"

namespace bespoke
{
namespace
{

TEST(IsaDecode, DoubleOpRoundTrip)
{
    for (Op1 op : {Op1::MOV, Op1::ADD, Op1::ADDC, Op1::SUBC, Op1::SUB,
                   Op1::CMP, Op1::BIT, Op1::BIC, Op1::BIS, Op1::XOR,
                   Op1::AND}) {
        for (int src = 0; src < 16; src += 5) {
            for (int dst = 0; dst < 16; dst += 7) {
                for (auto sm : {AddrMode::Register, AddrMode::Indexed,
                                AddrMode::Indirect,
                                AddrMode::IndirectInc}) {
                    for (auto dm : {AddrMode::Register,
                                    AddrMode::Indexed}) {
                        for (bool bm : {false, true}) {
                            uint16_t w = encodeDoubleOp(op, src, sm, dst,
                                                        dm, bm);
                            Instr d = decode(w);
                            ASSERT_EQ(d.format, Format::DoubleOp);
                            EXPECT_EQ(d.op1, op);
                            EXPECT_EQ(d.srcReg, src);
                            EXPECT_EQ(d.dstReg, dst);
                            EXPECT_EQ(d.srcMode, sm);
                            EXPECT_EQ(d.dstMode, dm);
                            EXPECT_EQ(d.byteMode, bm);
                        }
                    }
                }
            }
        }
    }
}

TEST(IsaDecode, SingleOpRoundTrip)
{
    for (Op2 op : {Op2::RRC, Op2::SWPB, Op2::RRA, Op2::SXT, Op2::PUSH,
                   Op2::CALL, Op2::RETI}) {
        uint16_t w = encodeSingleOp(op, 5, AddrMode::Indirect, false);
        Instr d = decode(w);
        ASSERT_EQ(d.format, Format::SingleOp);
        EXPECT_EQ(d.op2, op);
        EXPECT_EQ(d.srcReg, 5);
        EXPECT_EQ(d.srcMode, AddrMode::Indirect);
    }
}

TEST(IsaDecode, JumpRoundTrip)
{
    for (JumpCond c : {JumpCond::JNE, JumpCond::JEQ, JumpCond::JNC,
                       JumpCond::JC, JumpCond::JN, JumpCond::JGE,
                       JumpCond::JL, JumpCond::JMP}) {
        for (int16_t off : {-512, -1, 0, 1, 511}) {
            uint16_t w = encodeJump(c, off);
            Instr d = decode(w);
            ASSERT_EQ(d.format, Format::Jump);
            EXPECT_EQ(d.cond, c);
            EXPECT_EQ(d.offset, off);
        }
    }
}

TEST(IsaDecode, DaddIsIllegal)
{
    Instr d = decode(0xa000);
    EXPECT_EQ(d.format, Format::Illegal);
}

TEST(IsaDecode, ConstGenValues)
{
    struct Case
    {
        int reg;
        AddrMode mode;
        uint16_t value;
    } cases[] = {
        {kRegCG, AddrMode::Register, 0},
        {kRegCG, AddrMode::Indexed, 1},
        {kRegCG, AddrMode::Indirect, 2},
        {kRegCG, AddrMode::IndirectInc, 0xffff},
        {kRegSR, AddrMode::Indirect, 4},
        {kRegSR, AddrMode::IndirectInc, 8},
    };
    for (const auto &c : cases) {
        uint16_t w = encodeDoubleOp(Op1::MOV, c.reg, c.mode, 5,
                                    AddrMode::Register, false);
        Instr d = decode(w);
        EXPECT_TRUE(d.usesConstGen());
        EXPECT_EQ(d.constGenValue(), c.value);
        EXPECT_FALSE(d.srcNeedsExt());
    }
}

TEST(Assembler, BasicProgram)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
start:  mov #0x0280, sp
        mov #5, r5
loop:   dec r5
        jnz loop
        mov r5, &0x0202
halt:   jmp halt
        .org 0xfffe
        .word start
    )");
    EXPECT_EQ(p.entry(), 0xf000);
    EXPECT_EQ(p.symbols.at("start"), 0xf000);
    // mov #0x0280, sp -> 2 words (immediate), mov #5, r5 -> 2 words.
    EXPECT_EQ(p.symbols.at("loop"), 0xf008);
}

TEST(Assembler, ConstGenSavesWords)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
a:      mov #1, r5
b:      mov #3, r6
c:      nop
    )");
    // #1 via constant generator: 1 word. #3: 2 words.
    EXPECT_EQ(p.symbols.at("b") - p.symbols.at("a"), 2);
    EXPECT_EQ(p.symbols.at("c") - p.symbols.at("b"), 4);
}

TEST(Assembler, PseudoOps)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
        nop
        ret
        clr r5
        inc r5
        tst r5
        eint
        dint
        .org 0xfffe
        .word 0xf000
    )");
    // nop = mov r3, r3
    Instr d = decode(p.romWord(0xf000));
    EXPECT_EQ(d.format, Format::DoubleOp);
    EXPECT_EQ(d.op1, Op1::MOV);
    EXPECT_EQ(d.srcReg, kRegCG);
    // ret = mov @sp+, pc
    d = decode(p.romWord(0xf002));
    EXPECT_EQ(d.op1, Op1::MOV);
    EXPECT_EQ(d.srcMode, AddrMode::IndirectInc);
    EXPECT_EQ(d.srcReg, kRegSP);
    EXPECT_EQ(d.dstReg, kRegPC);
}

TEST(Assembler, BranchTracking)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
l:      dec r5
        jnz l
        jmp l
    )");
    ASSERT_EQ(p.condBranchAddrs.size(), 1u);
    EXPECT_EQ(p.condBranchAddrs[0], 0xf002);
}

TEST(Assembler, ExpressionsAndEqu)
{
    AsmProgram p = assemble(R"(
        .equ BASE, 0x0200
        .equ OFF, 4
        .org 0xf000
        mov #BASE+OFF, r5
        mov #BASE-2, r6
    )");
    EXPECT_EQ(p.romWord(0xf002), 0x0204);
    EXPECT_EQ(p.romWord(0xf006), 0x01fe);
}

} // namespace
} // namespace bespoke
