/**
 * @file
 * Transform correctness: stripBuffers / sweepDead / resynthesize must
 * preserve the simulated behavior of the design. Checked structurally
 * on hand-built cases and behaviorally on randomized netlists
 * (simulation equivalence over random stimulus).
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/rewrite.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

/** Random netlist with inputs, combinational soup, flops, outputs. */
Netlist
randomNetlist(Rng &rng, int num_inputs, int num_gates, int num_flops,
              bool with_ties)
{
    Netlist nl;
    NetBuilder b(nl);
    std::vector<GateId> pool;
    for (int i = 0; i < num_inputs; i++)
        pool.push_back(nl.addInput("in[" + std::to_string(i) + "]"));
    if (with_ties) {
        pool.push_back(b.tie0());
        pool.push_back(b.tie1());
    }
    // Flops with placeholder D (bound to random nets at the end).
    std::vector<GateId> flop_d;
    for (int i = 0; i < num_flops; i++) {
        GateId ph = b.buf(b.tie0());
        flop_d.push_back(ph);
        pool.push_back(b.dff(ph, rng.chance(1, 2)));
    }
    auto pick = [&]() { return pool[rng.below(
        static_cast<uint32_t>(pool.size()))]; };
    for (int i = 0; i < num_gates; i++) {
        CellType types[] = {CellType::INV,   CellType::AND2,
                            CellType::OR2,   CellType::NAND2,
                            CellType::NOR2,  CellType::XOR2,
                            CellType::XNOR2, CellType::MUX2,
                            CellType::AOI21, CellType::OAI21,
                            CellType::AND3,  CellType::OR3,
                            CellType::BUF};
        CellType t = types[rng.below(13)];
        int n = cellNumInputs(t);
        GateId g = nl.addGate(t, Module::Glue, pick(),
                              n > 1 ? pick() : kNoGate,
                              n > 2 ? pick() : kNoGate);
        pool.push_back(g);
    }
    for (GateId ph : flop_d)
        nl.setFanin(ph, 0, pool[rng.below(
            static_cast<uint32_t>(pool.size()))]);
    for (int i = 0; i < 4; i++)
        nl.addOutput("out[" + std::to_string(i) + "]", pick());
    nl.validate();
    return nl;
}

/** Run both netlists on identical random stimulus; compare outputs. */
void
expectBehaviorEquivalent(const Netlist &a, const Netlist &b,
                         uint32_t seed, int cycles)
{
    GateSim sa(a), sb(b);
    sa.reset();
    sb.reset();
    std::vector<GateId> ins_a = a.inputIds(), outs_a = a.outputIds();
    Rng rng(seed);
    for (int c = 0; c < cycles; c++) {
        for (GateId id : ins_a) {
            Logic v = logicOf(rng.chance(1, 2));
            sa.setInput(id, v);
            sb.setInput(b.port(a.name(id)), v);
        }
        sa.evalComb();
        sb.evalComb();
        for (GateId id : outs_a) {
            Logic va = sa.value(id);
            Logic vb = sb.value(b.port(a.name(id)));
            ASSERT_EQ(va, vb) << "output " << a.name(id) << " cycle "
                              << c;
        }
        sa.latchSequential();
        sb.latchSequential();
    }
}

class TransformSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(TransformSweep, StripBuffersPreservesBehavior)
{
    Rng rng(GetParam());
    Netlist nl = randomNetlist(rng, 5, 60, 6, false);
    RewriteResult rr = stripBuffers(nl);
    rr.netlist.validate();
    // No BUF cells remain.
    for (const Gate &g : rr.netlist.gates())
        EXPECT_NE(g.type, CellType::BUF);
    expectBehaviorEquivalent(nl, rr.netlist, GetParam() * 7 + 1, 24);
}

TEST_P(TransformSweep, ResynthesizePreservesBehavior)
{
    Rng rng(GetParam() + 50);
    Netlist nl = randomNetlist(rng, 5, 80, 6, /*with_ties=*/true);
    Netlist opt = resynthesize(nl);
    EXPECT_LE(opt.numCells(), nl.numCells());
    expectBehaviorEquivalent(nl, opt, GetParam() * 13 + 3, 24);
}

TEST_P(TransformSweep, SweepDeadRemovesOnlyUnobservable)
{
    Rng rng(GetParam() + 99);
    Netlist nl = randomNetlist(rng, 5, 60, 6, false);
    RewriteResult rr = sweepDead(nl);
    EXPECT_LE(rr.netlist.numCells(), nl.numCells());
    expectBehaviorEquivalent(nl, rr.netlist, GetParam() * 17 + 5, 24);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Transform, ConstantFoldingCases)
{
    // AND with 0 folds to 0; NAND with 1 becomes INV; XOR with 1
    // becomes INV; MUX with constant select becomes a wire.
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    nl.addOutput("and0", b.and2(a, b.tie0()));
    nl.addOutput("nand1", b.nand2(a, b.tie1()));
    nl.addOutput("xor1", b.xor2(a, b.tie1()));
    nl.addOutput("mux", b.mux2(b.tie1(), b.inv(a), a));
    nl.addOutput("or_self", b.or2(a, a));
    nl.validate();

    Netlist opt = resynthesize(nl);
    // and0 -> tie0; nand1/xor1 -> one INV each (may share); mux -> a;
    // or_self -> a. Expect a drastic reduction.
    EXPECT_LE(opt.numCells(), 4u);
    expectBehaviorEquivalent(nl, opt, 3, 8);
}

TEST(Transform, DffWithConstantInputs)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    // D tied to reset value: constant forever.
    nl.addOutput("q0", b.dff(b.tie0(), false));
    // Enable tied low: holds reset value forever.
    nl.addOutput("q1", b.dffe(a, b.tie0(), true));
    // Enable tied high: plain DFF.
    GateId q2 = b.dffe(a, b.tie1(), false);
    nl.addOutput("q2", q2);
    nl.validate();

    Netlist opt = resynthesize(nl);
    size_t flops = opt.stats().numSequential;
    EXPECT_EQ(flops, 1u);  // only q2 survives as a flop
    for (const Gate &g : opt.gates()) {
        if (cellSequential(g.type)) {
            EXPECT_EQ(g.type, CellType::DFF);  // DFFE simplified
        }
    }
    expectBehaviorEquivalent(nl, opt, 5, 16);
}

TEST(Transform, CutAndStitchHonorsActivity)
{
    // Build a mux between two subcircuits; mark one side untoggled.
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId sel = nl.addInput("sel");
    GateId left = b.inv(a);
    GateId right = b.xor2(a, b.inv(a));  // actually constant 1
    GateId m = b.mux2(sel, left, right);
    nl.addOutput("o", m);
    nl.validate();

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::Zero);
    sim.setInput(sel, Logic::Zero);
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    // Toggle only 'a'; 'sel' stays 0 so the mux and left side toggle.
    for (Logic v : {Logic::One, Logic::Zero, Logic::One}) {
        sim.setInput(a, v);
        sim.evalComb();
        tracker.observe(sim);
    }

    CutStats stats;
    Netlist cut = cutAndStitch(nl, tracker, &stats);
    EXPECT_GT(stats.gatesCutDirect, 0u);
    EXPECT_LT(cut.numCells(), nl.numCells());

    // The cut design must match the original for sel == 0 stimulus.
    GateSim so(nl), sc(cut);
    so.reset();
    sc.reset();
    for (Logic v : {Logic::Zero, Logic::One, Logic::Zero}) {
        so.setInput(a, v);
        so.setInput(sel, Logic::Zero);
        sc.setInput(cut.port("a"), v);
        sc.setInput(cut.port("sel"), Logic::Zero);
        so.evalComb();
        sc.evalComb();
        EXPECT_EQ(so.value(nl.port("o")),
                  sc.value(cut.port("o")));
    }
}

TEST(Transform, RewriterResolveChains)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g1 = b.buf(a);
    GateId g2 = b.buf(g1);
    GateId g3 = b.buf(g2);
    nl.addOutput("o", g3);

    Rewriter rw(nl);
    rw.makeAlias(g1, a);
    rw.makeAlias(g2, g1);
    rw.makeAlias(g3, g2);
    Rewriter::Resolved r = rw.resolve(g3);
    EXPECT_FALSE(r.isConst);
    EXPECT_EQ(r.gate, a);

    RewriteResult rr = rw.compact();
    // Output port now fed directly by the input.
    GateId out = rr.netlist.port("o");
    EXPECT_EQ(rr.netlist.gate(out).in[0], rr.netlist.port("a"));
}

TEST(Transform, ModuleLevelCutKeepsUsedModules)
{
    Netlist nl;
    NetBuilder b(nl, Module::Alu);
    GateId a = nl.addInput("a");
    GateId a2 = nl.addInput("a2");
    GateId used = b.inv(a);
    b.setModule(Module::Mult);
    GateId unused1 = b.and2(a, a2);
    GateId unused2 = b.inv(unused1);
    b.setModule(Module::Alu);
    nl.addOutput("o", used);
    nl.addOutput("m", unused2);
    nl.validate();

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::Zero);
    sim.setInput(a2, Logic::One);
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    sim.setInput(a, Logic::One);
    sim.evalComb();
    tracker.observe(sim);
    // Mult gates toggled here, so the whole module must be kept.
    Netlist cut = cutWholeModules(nl, tracker);
    EXPECT_EQ(cut.moduleStats(Module::Mult).numCells, 2u);
}

} // namespace
} // namespace bespoke
