/**
 * @file
 * Rewriter alias-chain edge cases: chain resolution through multiple
 * alias hops and into constants, deterministic rejection of self-
 * aliases and alias cycles at mark time, and the Dead-mark contract
 * (killed ties resolve to their constants; any live pin reading a
 * killed non-tie gate is a pass bug caught at compact()).
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/transform/rewrite.hh"

namespace bespoke
{
namespace
{

/** in -> three INVs (parallel), one output keeps the netlist alive. */
Netlist
threeInvs(GateId *in, GateId *g1, GateId *g2, GateId *g3)
{
    Netlist nl;
    NetBuilder b(nl);
    *in = nl.addInput("in");
    *g1 = b.inv(*in);
    *g2 = b.inv(*in);
    *g3 = b.inv(*in);
    nl.addOutput("out", *g1);
    nl.validate();
    return nl;
}

TEST(RewriteChains, AliasChainsResolveToFinalTarget)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    rw.makeAlias(g1, g2);
    rw.makeAlias(g2, g3);

    Rewriter::Resolved r = rw.resolve(g1);
    EXPECT_FALSE(r.isConst);
    EXPECT_FALSE(r.viaDead);
    EXPECT_EQ(r.gate, g3);

    RewriteResult rr = rw.compact();
    rr.netlist.validate();
    // Aliased gates are dropped (no surviving id); the alias target
    // survives and every reader is rewired onto it.
    EXPECT_EQ(rr.remap(g1), kNoGate);
    EXPECT_EQ(rr.remap(g2), kNoGate);
    EXPECT_NE(rr.remap(g3), kNoGate);
    // The output port now reads the survivor.
    GateId out = rr.netlist.port("out");
    EXPECT_EQ(rr.netlist.gate(out).in[0], rr.remap(g3));
}

TEST(RewriteChains, AliasChainEndingInConstantIsConstant)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    rw.makeAlias(g1, g2);
    rw.makeConstant(g2, true);

    Rewriter::Resolved r = rw.resolve(g1);
    EXPECT_TRUE(r.isConst);
    EXPECT_TRUE(r.value);
    EXPECT_FALSE(r.viaDead);

    RewriteResult rr = rw.compact();
    rr.netlist.validate();
    GateId out = rr.netlist.port("out");
    GateId drv = rr.netlist.gate(out).in[0];
    EXPECT_EQ(rr.netlist.gate(drv).type, CellType::TIE1);
}

TEST(RewriteChainsDeath, SelfAliasIsRejectedAtMarkTime)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    EXPECT_DEATH(rw.makeAlias(g1, g1), "alias");
}

TEST(RewriteChainsDeath, AliasCycleIsRejectedAtMarkTime)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    rw.makeAlias(g1, g2);
    rw.makeAlias(g2, g3);
    // g3 -> g1 would close the loop g1 -> g2 -> g3 -> g1.
    EXPECT_DEATH(rw.makeAlias(g3, g1), "alias");
}

TEST(RewriteChains, KilledTiesResolveToTheirConstants)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId in = nl.addInput("in");
    GateId t0 = b.tie0();
    GateId t1 = b.tie1();
    GateId a = b.and2(in, t1);
    GateId o = b.or2(a, t0);
    nl.addOutput("out", o);
    nl.validate();

    Rewriter rw(nl);
    rw.kill(t0);
    rw.kill(t1);
    // A killed tie is still a constant, not an implicit X/0: dead
    // sweeping unreferenced ties must never corrupt a reader that
    // (transiently) still points at them.
    Rewriter::Resolved r0 = rw.resolve(t0);
    EXPECT_TRUE(r0.isConst);
    EXPECT_FALSE(r0.value);
    EXPECT_FALSE(r0.viaDead);
    Rewriter::Resolved r1 = rw.resolve(t1);
    EXPECT_TRUE(r1.isConst);
    EXPECT_TRUE(r1.value);
    EXPECT_FALSE(r1.viaDead);

    // Live readers of the killed ties compact fine (they read the
    // constants; compact re-creates shared tie cells as needed).
    RewriteResult rr = rw.compact();
    rr.netlist.validate();
    EXPECT_NE(rr.remap(a), kNoGate);
    EXPECT_NE(rr.remap(o), kNoGate);
}

TEST(RewriteChains, KilledNonTieResolvesViaDead)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    rw.kill(g2);  // g2 has no readers: a legitimate kill
    Rewriter::Resolved r = rw.resolve(g2);
    EXPECT_TRUE(r.isConst);
    EXPECT_TRUE(r.viaDead);

    RewriteResult rr = rw.compact();
    rr.netlist.validate();
    EXPECT_EQ(rr.remap(g2), kNoGate);
    EXPECT_NE(rr.remap(g1), kNoGate);
}

TEST(RewriteChainsDeath, LivePinReadingKilledGateDiesAtCompact)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId in = nl.addInput("in");
    GateId mid = b.inv(in);
    GateId top = b.inv(mid);  // live reader of mid
    nl.addOutput("out", top);
    nl.validate();

    Rewriter rw(nl);
    rw.kill(mid);
    // Killing a gate with live readers is a pass bug: compact() must
    // refuse to silently wire the reader to a constant.
    EXPECT_DEATH(rw.compact(), "killed");
}

TEST(RewriteChains, AliasIntoKilledGateKeepsViaDeadMarking)
{
    GateId in, g1, g2, g3;
    Netlist nl = threeInvs(&in, &g1, &g2, &g3);
    Rewriter rw(nl);
    rw.makeAlias(g2, g3);
    rw.kill(g3);
    Rewriter::Resolved r = rw.resolve(g2);
    EXPECT_TRUE(r.isConst);
    EXPECT_TRUE(r.viaDead);
}

} // namespace
} // namespace bespoke
