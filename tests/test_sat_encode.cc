/**
 * @file
 * CNF encoder differentials: the Tseitin combinational encoding and the
 * sequential SoC unroller must agree, value for value, with the gate
 * simulator they model.
 *
 *  - Combinational: random netlists, every gate compared between the
 *    encoder (constants folded at encode time, and separately a
 *    symbolic encoding pinned by assumptions) and GateSim.
 *  - Sequential: the real core unrolled from reset; every free
 *    variable of the unrolling is pinned to a concrete value by
 *    assumptions, and the unique resulting trace is compared frame by
 *    frame against a concrete Soc replay of the same stimulus — known
 *    simulator values must match the model exactly; X values (the
 *    simulator's unknowns) are exactly where the model is allowed to
 *    pick any refinement.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/builder/net_builder.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/cdcl.hh"
#include "src/sat/encode.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/soc.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

namespace bespoke::sat
{
namespace
{

/** Random sequential netlist (same shape the pipeline tests use). */
Netlist
randomNetlist(Rng &rng, int num_inputs, int num_gates, int num_flops)
{
    Netlist nl;
    NetBuilder b(nl);
    std::vector<GateId> pool;
    for (int i = 0; i < num_inputs; i++)
        pool.push_back(nl.addInput("in[" + std::to_string(i) + "]"));
    pool.push_back(b.tie0());
    pool.push_back(b.tie1());
    std::vector<GateId> flop_d;
    for (int i = 0; i < num_flops; i++) {
        GateId ph = b.buf(b.tie0());
        flop_d.push_back(ph);
        pool.push_back(b.dff(ph, rng.chance(1, 2)));
    }
    auto pick = [&]() {
        return pool[rng.below(static_cast<uint32_t>(pool.size()))];
    };
    for (int i = 0; i < num_gates; i++) {
        CellType types[] = {CellType::INV,   CellType::AND2,
                            CellType::OR2,   CellType::NAND2,
                            CellType::NOR2,  CellType::XOR2,
                            CellType::XNOR2, CellType::MUX2,
                            CellType::AOI21, CellType::OAI21,
                            CellType::AND3,  CellType::OR3,
                            CellType::BUF};
        CellType t = types[rng.below(13)];
        int n = cellNumInputs(t);
        GateId g = nl.addGate(t, Module::Glue, pick(),
                              n > 1 ? pick() : kNoGate,
                              n > 2 ? pick() : kNoGate);
        pool.push_back(g);
    }
    for (GateId ph : flop_d)
        nl.setFanin(ph, 0,
                    pool[rng.below(
                        static_cast<uint32_t>(pool.size()))]);
    for (int i = 0; i < 4; i++)
        nl.addOutput("out[" + std::to_string(i) + "]", pick());
    nl.validate();
    return nl;
}

bool
isSource(const Gate &g)
{
    return g.type == CellType::INPUT || g.type == CellType::DFF ||
           g.type == CellType::DFFE;
}

TEST(SatEncode, FoldedCombFrameMatchesGateSim)
{
    // All sources constant: the encoder must fold every gate to
    // kTrue/kFalse and agree with the simulator bit for bit.
    for (uint64_t seed = 0; seed < 200; seed++) {
        Rng rng(0xc0de + seed);
        Netlist nl = randomNetlist(rng, 6, 60, 4);
        std::vector<GateId> order = nl.levelize();

        GateSim sim(nl);
        sim.reset();
        std::vector<Lit> vals(nl.size(), kFalse);
        for (GateId i = 0; i < nl.size(); i++) {
            const Gate &g = nl.gate(i);
            if (g.type == CellType::INPUT) {
                bool v = rng.chance(1, 2);
                sim.setInput(i, v ? Logic::One : Logic::Zero);
                vals[i] = v ? kTrue : kFalse;
            } else if (g.type == CellType::DFF ||
                       g.type == CellType::DFFE) {
                // reset() loaded the flop's reset value.
                vals[i] = nl.gate(i).resetValue ? kTrue : kFalse;
            }
        }
        sim.evalComb();

        CdclSolver solver;
        Tseitin ts(solver);
        encodeCombFrame(nl, order, ts, &vals);
        ASSERT_EQ(solver.numVars(), 1u)
            << "seed " << seed << ": constants must fold, not encode";
        for (GateId i = 0; i < nl.size(); i++) {
            Logic v = sim.value(i);
            ASSERT_TRUE(isKnown(v)) << "seed " << seed;
            ASSERT_EQ(vals[i], v == Logic::One ? kTrue : kFalse)
                << "seed " << seed << " gate " << i << " ("
                << cellName(nl.gate(i).type, nl.gate(i).drive) << ")";
        }
    }
}

TEST(SatEncode, SymbolicCombFrameMatchesGateSim)
{
    // Symbolic inputs, pinned by assumptions at solve time: exercises
    // the clause emission path of every cell shape.
    for (uint64_t seed = 0; seed < 200; seed++) {
        Rng rng(0x5eed + seed);
        Netlist nl = randomNetlist(rng, 6, 60, 4);
        std::vector<GateId> order = nl.levelize();

        CdclSolver solver;
        Tseitin ts(solver);
        std::vector<Lit> vals(nl.size(), kFalse);
        std::vector<GateId> sources;
        for (GateId i = 0; i < nl.size(); i++) {
            if (isSource(nl.gate(i))) {
                vals[i] = ts.fresh();
                sources.push_back(i);
            }
        }
        encodeCombFrame(nl, order, ts, &vals);

        for (int trial = 0; trial < 4; trial++) {
            GateSim sim(nl);
            sim.reset();
            // Flop outputs are sequential state, not combinational
            // nets: pin them through the state-restore interface (a
            // force() would only stick on gates the comb sweep
            // evaluates).
            SeqState seq = sim.seqState();
            std::vector<Lit> assumps;
            for (GateId i : sources) {
                bool v = rng.chance(1, 2);
                assumps.push_back(v ? vals[i] : ~vals[i]);
                Logic lv = v ? Logic::One : Logic::Zero;
                if (nl.gate(i).type == CellType::INPUT) {
                    sim.setInput(i, lv);
                } else {
                    const std::vector<GateId> &ids = sim.seqIds();
                    for (size_t k = 0; k < ids.size(); k++)
                        if (ids[k] == i)
                            seq[k] = static_cast<uint8_t>(lv);
                }
            }
            sim.restoreSeqState(seq);
            sim.evalComb();
            ASSERT_EQ(solver.solve(assumps), SolveResult::Sat)
                << "seed " << seed;
            for (GateId i = 0; i < nl.size(); i++) {
                Logic v = sim.value(i);
                ASSERT_TRUE(isKnown(v));
                ASSERT_EQ(solver.modelValue(vals[i]),
                          v == Logic::One)
                    << "seed " << seed << " trial " << trial
                    << " gate " << i << " ("
                    << cellName(nl.gate(i).type, nl.gate(i).drive)
                    << ")";
            }
        }
    }
}

TEST(SatEncode, UnrolledCoreMatchesSocReplay)
{
    const int kDepth = 24;
    Netlist core = buildBsp430();
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();

    CdclSolver solver;
    UnrollOptions uo;
    SocUnroller un(core, prog, solver, uo);
    for (int f = 0; f < kDepth; f++)
        un.addFrame();

    // Pin every free variable to a concrete value chosen by a seeded
    // RNG: the formula then has exactly one trace.
    Rng rng(0xfeedface);
    std::vector<Lit> assumps;
    std::vector<uint16_t> gpio(kDepth, 0);
    std::vector<bool> irq(kDepth, false);
    std::vector<std::pair<uint32_t, uint16_t>> ram_init;
    uint16_t rdata_init = 0;
    for (const FreeVarInfo &fv : un.freeVars()) {
        bool v = rng.chance(1, 2);
        assumps.push_back(mkLit(fv.var, !v));
        switch (fv.kind) {
          case FreeVarInfo::Kind::GpioIn:
            if (v)
                gpio[fv.frame] |= uint16_t(1u << fv.bit);
            break;
          case FreeVarInfo::Kind::IrqExt:
            irq[fv.frame] = v;
            break;
          case FreeVarInfo::Kind::InitRdata:
            if (v)
                rdata_init |= uint16_t(1u << fv.bit);
            break;
          case FreeVarInfo::Kind::RamInit:
            if (ram_init.empty() || ram_init.back().first != fv.index)
                ram_init.push_back({fv.index, 0});
            if (v)
                ram_init.back().second |= uint16_t(1u << fv.bit);
            break;
          default:
            break;  // MemFresh etc: unconstrained either way
        }
    }
    ASSERT_EQ(solver.solve(assumps), SolveResult::Sat);

    // Concrete replay of the same stimulus.
    Soc soc(core, prog, /*ram_unknown=*/true);
    soc.reset();
    EnvState env = soc.envState();
    for (const auto &[widx, val] : ram_init)
        env.ram[widx] = SWord::of(val);
    env.rdata = SWord::of(rdata_init);
    soc.restoreEnvState(env);

    size_t compared = 0;
    for (int f = 0; f < kDepth; f++) {
        soc.setGpioIn(SWord::of(gpio[f]));
        soc.setIrqExt(irq[f] ? Logic::One : Logic::Zero);
        soc.evalOnly();
        for (GateId i = 0; i < core.size(); i++) {
            Logic v = soc.sim().value(i);
            if (!isKnown(v))
                continue;  // model may refine X either way
            ASSERT_EQ(solver.modelValue(un.gateAt(i, f)),
                      v == Logic::One)
                << "frame " << f << " gate " << i << " ("
                << cellName(core.gate(i).type, core.gate(i).drive)
                << ")";
            compared++;
        }
        soc.finishCycle();
    }
    // The replay must be almost fully known: the unroller is being
    // checked against real values, not vacuously against X.
    EXPECT_GT(compared, static_cast<size_t>(core.size()) * kDepth / 2);
}

TEST(SatEncode, UnrollerVariableNumberingIsDeterministic)
{
    Netlist core = buildBsp430();
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    auto build = [&](std::vector<FreeVarInfo> *fv) {
        Cnf cnf;
        UnrollOptions uo;
        SocUnroller un(core, prog, cnf, uo);
        for (int f = 0; f < 6; f++)
            un.addFrame();
        *fv = un.freeVars();
        return std::pair<size_t, size_t>{cnf.numVars(),
                                         cnf.numClauses()};
    };
    std::vector<FreeVarInfo> fa, fb;
    auto a = build(&fa);
    auto b = build(&fb);
    EXPECT_EQ(a, b);
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); i++) {
        EXPECT_EQ(fa[i].var, fb[i].var);
        EXPECT_EQ(static_cast<int>(fa[i].kind),
                  static_cast<int>(fb[i].kind));
    }
}

} // namespace
} // namespace bespoke::sat
