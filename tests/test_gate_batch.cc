/**
 * @file
 * Bit-identity pin for the lane-batched gate runner: every result and
 * every observer of runScenarioGateBatch / runWorkloadGateBatch must
 * equal running the same scenarios through runWorkloadGate
 * sequentially with the same shared trackers — at every plane width,
 * across chunk boundaries, for halting and cycle-exhausted runs, for
 * IRQ workloads, for per-lane program overlays, and interleaved with
 * scalar runs on the same counters.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/cpu/bsp430.hh"
#include "src/verify/runner.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

const Netlist &
cpuNetlist()
{
    static Netlist nl = buildBsp430();
    return nl;
}

/** Everything a batch run can produce, flattened for comparison. */
struct BatchResult
{
    std::vector<GateRun> runs;
    std::vector<uint64_t> sharedCounts;
    uint64_t sharedCycles = 0;
    std::vector<std::vector<uint64_t>> perScenarioCounts;
    std::vector<uint64_t> perScenarioCycles;
    std::vector<uint8_t> activityToggled;
    std::vector<uint8_t> activityInitial;
    ModuleIdleCounts moduleIdle;
};

std::vector<uint64_t>
countsOf(const ToggleCounter &tc, const Netlist &nl)
{
    std::vector<uint64_t> v(nl.size());
    for (GateId g = 0; g < nl.size(); g++)
        v[g] = tc.count(g);
    return v;
}

/**
 * Golden reference: sequential runWorkloadGate with shared trackers,
 * per-scenario counters and module-idle tracking through the per-cycle
 * hook (the same composition power_gating uses). Written independently
 * of the batch runner's own scalar fallback so both paths are pinned
 * against it.
 */
BatchResult
runReference(const Netlist &nl, const Workload &w,
             const std::vector<GateScenario> &scenarios,
             const std::vector<int> &counted)
{
    BatchResult r;
    ToggleCounter shared(nl);
    ActivityTracker activity(nl);
    std::vector<std::unique_ptr<ToggleCounter>> per;
    for (size_t i = 0; i < scenarios.size(); i++)
        per.push_back(std::make_unique<ToggleCounter>(nl));

    auto ctx = SocContext::make(nl);
    std::vector<uint8_t> last;
    for (size_t i = 0; i < scenarios.size(); i++) {
        const GateScenario &s = scenarios[i];
        bool mine = std::find(counted.begin(), counted.end(),
                              static_cast<int>(i)) != counted.end();
        bool first = true;
        auto per_cycle = [&](const GateSim &sim) {
            if (mine)
                per[i]->observe(sim);
            const std::vector<uint8_t> &v = sim.values();
            if (first) {
                last = v;
                first = false;
                return;
            }
            bool active[kNumModules] = {};
            for (GateId g = 0; g < nl.size(); g++) {
                if (v[g] != last[g])
                    active[static_cast<int>(nl.gate(g).module)] = true;
                last[g] = v[g];
            }
            for (int m = 0; m < kNumModules; m++) {
                if (!active[m])
                    r.moduleIdle.idle[m]++;
            }
            r.moduleIdle.totalCycles++;
        };
        r.runs.push_back(runWorkloadGate(nl, w, *s.prog, *s.input,
                                         &shared, &activity, per_cycle,
                                         ctx));
    }
    r.sharedCounts = countsOf(shared, nl);
    r.sharedCycles = shared.cycles();
    for (int i : counted) {
        r.perScenarioCounts.push_back(countsOf(*per[i], nl));
        r.perScenarioCycles.push_back(per[i]->cycles());
    }
    r.activityToggled.resize(nl.size());
    r.activityInitial.resize(nl.size());
    for (GateId g = 0; g < nl.size(); g++) {
        r.activityToggled[g] = activity.toggled(g);
        r.activityInitial[g] =
            static_cast<uint8_t>(activity.initialValue(g));
    }
    return r;
}

/** The batch runner under test, same observer shape. */
BatchResult
runBatch(const Netlist &nl, const Workload &w,
         std::vector<GateScenario> scenarios,
         const std::vector<int> &counted, int plane_bits)
{
    BatchResult r;
    ToggleCounter shared(nl);
    ActivityTracker activity(nl);
    std::vector<std::unique_ptr<ToggleCounter>> per;
    for (size_t i = 0; i < scenarios.size(); i++)
        per.push_back(std::make_unique<ToggleCounter>(nl));
    for (int i : counted)
        scenarios[i].toggles = per[i].get();

    GateBatchObservers obs;
    obs.toggles = &shared;
    obs.activity = &activity;
    obs.moduleIdle = &r.moduleIdle;
    r.runs = runScenarioGateBatch(nl, w, scenarios, plane_bits, obs);

    r.sharedCounts = countsOf(shared, nl);
    r.sharedCycles = shared.cycles();
    for (int i : counted) {
        r.perScenarioCounts.push_back(countsOf(*per[i], nl));
        r.perScenarioCycles.push_back(per[i]->cycles());
    }
    r.activityToggled.resize(nl.size());
    r.activityInitial.resize(nl.size());
    for (GateId g = 0; g < nl.size(); g++) {
        r.activityToggled[g] = activity.toggled(g);
        r.activityInitial[g] =
            static_cast<uint8_t>(activity.initialValue(g));
    }
    return r;
}

void
expectRunsEqual(const std::vector<GateRun> &a,
                const std::vector<GateRun> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].halted, b[i].halted) << "run " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "run " << i;
        EXPECT_EQ(a[i].out, b[i].out) << "run " << i;
        EXPECT_EQ(a[i].gpioOut, b[i].gpioOut) << "run " << i;
        EXPECT_EQ(a[i].ram, b[i].ram) << "run " << i;
    }
}

void
expectBatchEqual(const BatchResult &ref, const BatchResult &got)
{
    expectRunsEqual(ref.runs, got.runs);
    EXPECT_EQ(ref.sharedCounts, got.sharedCounts);
    EXPECT_EQ(ref.sharedCycles, got.sharedCycles);
    ASSERT_EQ(ref.perScenarioCounts.size(),
              got.perScenarioCounts.size());
    for (size_t i = 0; i < ref.perScenarioCounts.size(); i++) {
        EXPECT_EQ(ref.perScenarioCounts[i], got.perScenarioCounts[i])
            << "per-scenario counter " << i;
        EXPECT_EQ(ref.perScenarioCycles[i], got.perScenarioCycles[i])
            << "per-scenario counter " << i;
    }
    EXPECT_EQ(ref.activityToggled, got.activityToggled);
    EXPECT_EQ(ref.activityInitial, got.activityInitial);
    EXPECT_EQ(ref.moduleIdle.idle, got.moduleIdle.idle);
    EXPECT_EQ(ref.moduleIdle.totalCycles, got.moduleIdle.totalCycles);
}

std::vector<WorkloadInput>
genInputs(const Workload &w, size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<WorkloadInput> inputs;
    for (size_t i = 0; i < count; i++)
        inputs.push_back(w.genInput(rng));
    return inputs;
}

std::vector<GateScenario>
scenariosOf(const AsmProgram &prog,
            const std::vector<WorkloadInput> &inputs)
{
    std::vector<GateScenario> s(inputs.size());
    for (size_t i = 0; i < inputs.size(); i++) {
        s[i].prog = &prog;
        s[i].input = &inputs[i];
    }
    return s;
}

TEST(GateBatch, ResolvePlaneBits)
{
    unsetenv("BESPOKE_PLANE_BITS");
    EXPECT_EQ(resolvePlaneBits(0), 64);
    EXPECT_EQ(resolvePlaneBits(128), 128);
    EXPECT_EQ(resolvePlaneBits(512), 512);
    EXPECT_EQ(resolvePlaneBits(100), 64);  // invalid
    setenv("BESPOKE_PLANE_BITS", "256", 1);
    EXPECT_EQ(resolvePlaneBits(0), 256);
    EXPECT_EQ(resolvePlaneBits(128), 128);  // explicit wins
    setenv("BESPOKE_PLANE_BITS", "99", 1);
    EXPECT_EQ(resolvePlaneBits(0), 64);
    unsetenv("BESPOKE_PLANE_BITS");
}

/** Halting runs, one chunk, per-scenario counters on a subset. */
TEST(GateBatch, MatchesScalarHaltingRuns)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, 10, 42);
    auto scenarios = scenariosOf(prog, inputs);
    std::vector<int> counted = {1, 4, 7};

    BatchResult ref = runReference(nl, w, scenarios, counted);
    for (const GateRun &r : ref.runs)
        ASSERT_TRUE(r.halted);
    expectBatchEqual(ref, runBatch(nl, w, scenarios, counted, 64));
    expectBatchEqual(ref, runBatch(nl, w, scenarios, counted, 256));
}

/**
 * More scenarios than one 64-lane plane holds: two chunks at W=64
 * (pinning the cross-chunk boundary replay on the shared counter) and
 * one multi-word plane at W=128 (pinning cross-word lane placement).
 * The cycle budget is capped so every run retires by exhaustion.
 */
TEST(GateBatch, MatchesScalarAcrossChunksAndWords)
{
    const Netlist &nl = cpuNetlist();
    Workload w = workloadByName("intAVG");
    w.maxCycles = 300;
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, 70, 7);
    auto scenarios = scenariosOf(prog, inputs);
    std::vector<int> counted = {0, 63, 65, 69};  // straddle the word

    BatchResult ref = runReference(nl, w, scenarios, counted);
    for (const GateRun &r : ref.runs)
        ASSERT_FALSE(r.halted);
    expectBatchEqual(ref, runBatch(nl, w, scenarios, counted, 64));
    expectBatchEqual(ref, runBatch(nl, w, scenarios, counted, 128));
}

/** IRQ workloads share the cycle-scheduled pulse across lanes. */
TEST(GateBatch, MatchesScalarIrqWorkload)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("irq");
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, 6, 11);
    auto scenarios = scenariosOf(prog, inputs);

    BatchResult ref = runReference(nl, w, scenarios, {2});
    for (const GateRun &r : ref.runs)
        ASSERT_TRUE(r.halted);
    expectBatchEqual(ref, runBatch(nl, w, scenarios, {2}, 64));
}

/** Per-lane program overlays (the mutant-sweep shape). */
TEST(GateBatch, MixedProgramsPerLane)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("intFilt");
    AsmProgram base = w.assembleProgram();
    AsmProgram alt =
        workloadByName("intFilt-scrambled").assembleProgram();
    auto inputs = genInputs(w, 8, 5);
    auto scenarios = scenariosOf(base, inputs);
    for (size_t i = 1; i < scenarios.size(); i += 2)
        scenarios[i].prog = &alt;

    BatchResult ref = runReference(nl, w, scenarios, {0, 1});
    expectBatchEqual(ref, runBatch(nl, w, scenarios, {0, 1}, 64));
}

/** Batches below kMinLaneBatch take the scalar fallback — and still
 *  honor every observer. */
TEST(GateBatch, SmallBatchFallsBackToScalar)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, kMinLaneBatch - 1, 3);
    auto scenarios = scenariosOf(prog, inputs);

    BatchResult ref = runReference(nl, w, scenarios, {0, 2});
    expectBatchEqual(ref, runBatch(nl, w, scenarios, {0, 2}, 512));
}

/**
 * A shared counter primed by a scalar run and then handed to a batch
 * sees the scalar-to-batch boundary transition, exactly as if every
 * run had gone through observe() in sequence.
 */
TEST(GateBatch, SharedCounterInterleavesWithScalarRuns)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, 6, 21);
    auto ctx = SocContext::make(nl);

    ToggleCounter ref(nl);
    for (const WorkloadInput &in : inputs)
        runWorkloadGate(nl, w, prog, in, &ref, nullptr, nullptr, ctx);

    ToggleCounter got(nl);
    runWorkloadGate(nl, w, prog, inputs[0], &got, nullptr, nullptr,
                    ctx);
    std::vector<WorkloadInput> rest(inputs.begin() + 1, inputs.end());
    GateBatchObservers obs;
    obs.toggles = &got;
    runWorkloadGateBatch(nl, w, prog, rest, 64, obs, ctx);

    EXPECT_EQ(countsOf(ref, nl), countsOf(got, nl));
    EXPECT_EQ(ref.cycles(), got.cycles());
}

/** Batch results with no observers at all still match. */
TEST(GateBatch, NoObservers)
{
    const Netlist &nl = cpuNetlist();
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    auto inputs = genInputs(w, 5, 77);

    std::vector<GateRun> ref;
    for (const WorkloadInput &in : inputs)
        ref.push_back(runWorkloadGate(nl, w, prog, in));
    expectRunsEqual(ref, runWorkloadGateBatch(nl, w, prog, inputs, 64));
    expectRunsEqual(ref,
                    runWorkloadGateBatch(nl, w, prog, inputs, 512));
}

} // namespace
} // namespace bespoke
