/**
 * @file
 * LaneSim vs. scalar GateSim lockstep equivalence.
 *
 * LaneSim packs 64 independent scenarios into two uint64_t bit planes
 * per net (lane_sim.hh); these tests pin down that every lane is
 * bit-identical to a scalar GateSim run of the same scenario:
 *
 *  - randomized netlist fuzz: random DAGs with flop feedback, all 64
 *    lanes driven with *distinct* random 0/1/X input sequences, with
 *    per-lane-mask force()/clearForces() interleavings, mid-run resets
 *    and per-lane sequential snapshot/restore, comparing every net of
 *    every lane (as raw planes, which also pins the canonical
 *    val-masked-by-known form) plus the accumulated activity-tracker
 *    toggle sets after every eval and latch;
 *  - the real bsp430 core in a LaneSoc, 64 lanes loaded with different
 *    workload inputs, locked against 64 scalar Socs including the
 *    behavioral memory environment (symbolic X RAM included).
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/cpu/bsp430.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/lane_sim.hh"
#include "src/sim/soc.hh"
#include "src/timing/sta.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

constexpr int kLanes = LaneSim::kLanes;

Logic
randomLogic(Rng &rng, int x_chance_pct)
{
    if (static_cast<int>(rng.below(100)) < x_chance_pct)
        return Logic::X;
    return rng.chance(1, 2) ? Logic::One : Logic::Zero;
}

uint64_t
randomMask(Rng &rng)
{
    return (static_cast<uint64_t>(rng.next()) << 32) | rng.next();
}

/**
 * Random sequential netlist with every cell shape the library offers
 * and flop feedback bound through placeholder BUFs (the same recipe as
 * tests/test_sim_event_equiv.cc so both oracles chew on like designs).
 */
struct RandomDesign
{
    Netlist nl;
    Bus inputs;

    explicit RandomDesign(uint32_t seed)
    {
        Rng rng(seed);
        NetBuilder b(nl);
        inputs = b.inputBus("in", 6);

        std::vector<GateId> pool(inputs);
        pool.push_back(b.tie0());
        pool.push_back(b.tie1());
        auto pick = [&] {
            return pool[rng.below(static_cast<uint32_t>(pool.size()))];
        };

        std::vector<GateId> placeholders;
        size_t gates = 60 + rng.below(80);
        for (size_t g = 0; g < gates; g++) {
            GateId out;
            switch (rng.below(14)) {
            case 0: out = b.inv(pick()); break;
            case 1: out = b.and2(pick(), pick()); break;
            case 2: out = b.or2(pick(), pick()); break;
            case 3: out = b.xor2(pick(), pick()); break;
            case 4: out = b.nand2(pick(), pick()); break;
            case 5: out = b.nor2(pick(), pick()); break;
            case 6: out = b.xnor2(pick(), pick()); break;
            case 7: out = b.mux2(pick(), pick(), pick()); break;
            case 8: out = b.aoi21(pick(), pick(), pick()); break;
            case 9: out = b.oai21(pick(), pick(), pick()); break;
            case 10: out = b.and3(pick(), pick(), pick()); break;
            case 11: out = b.or3(pick(), pick(), pick()); break;
            case 12: {
                GateId ph = b.buf(b.tie0());
                placeholders.push_back(ph);
                out = rng.chance(1, 2)
                          ? b.dff(ph, rng.chance(1, 2))
                          : b.dffe(ph, pick(), rng.chance(1, 2));
                break;
            }
            default: out = b.buf(pick()); break;
            }
            pool.push_back(out);
        }
        for (GateId ph : placeholders)
            nl.setFanin(ph, 0, pick());
        for (int i = 0; i < 4; i++)
            nl.addOutput("o" + std::to_string(i), pick());
        nl.validate();
    }
};

/**
 * Compare every net of every lane against the matching scalar sim, as
 * raw planes: this both checks the decoded Logic values and pins the
 * canonical-form invariant (an X lane must have val bit 0).
 */
void
expectLanesMatch(const LaneSim &ls, const std::vector<GateSim> &ref,
                 const char *when, uint64_t cycle)
{
    for (GateId id = 0; id < ls.netlist().size(); id++) {
        uint64_t v = 0, k = 0;
        for (int lane = 0; lane < kLanes; lane++) {
            Logic e = ref[lane].value(id);
            if (e == Logic::X)
                continue;
            k |= 1ull << lane;
            if (e == Logic::One)
                v |= 1ull << lane;
        }
        ASSERT_EQ(ls.valPlane(id), v)
            << "val plane diverged on gate " << id << " " << when
            << " at cycle " << cycle;
        ASSERT_EQ(ls.knownPlane(id), k)
            << "known plane diverged on gate " << id << " " << when
            << " at cycle " << cycle;
    }
}

class LaneSimFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LaneSimFuzz, RandomNetlistLockstep)
{
    RandomDesign d(GetParam());
    LaneSim ls(d.nl);
    std::vector<GateSim> ref;
    ref.reserve(kLanes);
    for (int lane = 0; lane < kLanes; lane++)
        ref.emplace_back(d.nl, GateSim::EvalMode::EventDriven, ls.prep());

    Rng rng(GetParam() * 6151 + 3);
    ls.reset();
    for (GateSim &r : ref)
        r.reset();
    expectLanesMatch(ls, ref, "after reset", 0);

    // Activity trackers ride along: one fed by the 64-lane observe,
    // one fed by all 64 scalar sims; the toggle sets must agree.
    ls.evalComb();
    for (GateSim &r : ref)
        r.evalComb();
    ActivityTracker at_lane(d.nl), at_ref(d.nl);
    at_lane.captureInitial(ref[0]);
    at_ref.captureInitial(ref[0]);

    std::vector<SeqState> snap(kLanes);
    bool have_snap = false;

    for (uint64_t cycle = 0; cycle < 200; cycle++) {
        // Distinct input sequences per lane, driving only a random
        // subset each cycle (unchanged nets must not disturb the
        // event-driven oracles' dirty sets).
        for (GateId in : d.inputs) {
            for (int lane = 0; lane < kLanes; lane++) {
                if (rng.chance(2, 3))
                    continue;
                Logic v = randomLogic(rng, 25);
                ls.setInput(in, lane, v);
                ref[lane].setInput(in, v);
            }
        }
        // Per-lane-mask forces on arbitrary nets.
        if (rng.chance(1, 3)) {
            GateId t = rng.below(static_cast<uint32_t>(d.nl.size()));
            uint64_t lanes = randomMask(rng);
            uint64_t value = randomMask(rng) & lanes;
            ls.force(t, lanes, value);
            for (int lane = 0; lane < kLanes; lane++) {
                if (!(lanes & (1ull << lane)))
                    continue;
                ref[lane].force(t, (value & (1ull << lane))
                                       ? Logic::One
                                       : Logic::Zero);
            }
        }
        if (rng.chance(1, 6)) {
            uint64_t lanes = randomMask(rng);
            ls.clearForces(lanes);
            for (int lane = 0; lane < kLanes; lane++) {
                if (lanes & (1ull << lane))
                    ref[lane].clearForces();
            }
        }

        ls.evalComb();
        for (GateSim &r : ref)
            r.evalComb();
        expectLanesMatch(ls, ref, "after evalComb", cycle);

        at_lane.observe(ls, ~0ull);
        for (const GateSim &r : ref)
            at_ref.observe(r);

        ls.latchSequential();
        for (GateSim &r : ref)
            r.latchSequential();
        expectLanesMatch(ls, ref, "after latch", cycle);

        // Per-lane sequential snapshot / restore (the frontier refills
        // retired lanes this way).
        if (rng.chance(1, 12)) {
            for (int lane = 0; lane < kLanes; lane++)
                snap[lane] = ref[lane].seqState();
            have_snap = true;
        }
        if (have_snap && rng.chance(1, 12)) {
            uint64_t lanes = randomMask(rng);
            for (int lane = 0; lane < kLanes; lane++) {
                if (!(lanes & (1ull << lane)))
                    continue;
                ls.restoreSeqLane(lane, snap[lane]);
                ref[lane].restoreSeqState(snap[lane]);
            }
            ls.evalComb();
            for (GateSim &r : ref)
                r.evalComb();
            expectLanesMatch(ls, ref, "after restore", cycle);
        }
        if (rng.chance(1, 48)) {
            ls.reset();
            for (GateSim &r : ref)
                r.reset();
            expectLanesMatch(ls, ref, "after reset", cycle);
            ls.evalComb();
            for (GateSim &r : ref)
                r.evalComb();
            expectLanesMatch(ls, ref, "after reset eval", cycle);
        }
    }

    for (GateId i = 0; i < d.nl.size(); i++) {
        ASSERT_EQ(at_lane.toggled(i), at_ref.toggled(i))
            << "toggle set differs on gate " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaneSimFuzz, ::testing::Range(0u, 8u));

TEST(LaneSim, Bsp430WorkloadLockstep)
{
    Netlist nl = buildBsp430();
    sizeForLoads(nl);
    std::shared_ptr<const SocContext> ctx = SocContext::make(nl);

    const Workload &w = workloadByName("binSearch");
    AsmProgram prog = w.assembleProgram();

    // 64 scalar Socs, each with its own workload input; RAM starts
    // symbolic (all X) so lanes exercise X propagation differently.
    std::vector<Soc> ref;
    ref.reserve(kLanes);
    LaneSoc lane(ctx, prog);

    Rng in_rng(99);
    SWord gpio;  // uniform across lanes, like the analysis drives it
    for (int i = 0; i < kLanes; i++) {
        ref.emplace_back(ctx, prog, /*ram_unknown=*/true);
        Soc &soc = ref.back();
        WorkloadInput input = w.genInput(in_rng);
        if (i == 0)
            gpio = SWord::of(input.gpioIn);
        soc.setGpioIn(gpio);
        soc.setIrqExt(Logic::Zero);
        for (size_t j = 0; j < input.ramWords.size(); j++) {
            soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * j),
                            SWord::of(input.ramWords[j]));
        }
        for (auto [addr, value] : input.extraRam)
            soc.pokeRamWord(addr, SWord::of(value));
        lane.loadLane(i, soc.sim().seqState(), soc.envState(), 0);
    }
    lane.setGpioIn(gpio);
    lane.setIrqExt(Logic::Zero);

    uint64_t cycles = std::min<uint64_t>(w.maxCycles, 1200);
    for (uint64_t c = 0; c < cycles; c++) {
        lane.evalOnly();
        for (Soc &soc : ref)
            soc.evalOnly();

        for (int i = 0; i < kLanes; i++) {
            ASSERT_EQ(lane.pc(i), ref[i].pc())
                << "pc diverged on lane " << i << " at cycle " << c;
        }
        if (c % 32 == 0) {
            for (GateId id = 0; id < nl.size(); id++) {
                for (int i = 0; i < kLanes; i++) {
                    ASSERT_EQ(lane.sim().value(id, i),
                              ref[i].sim().value(id))
                        << "gate " << id << " diverged on lane " << i
                        << " at cycle " << c;
                }
            }
        }

        lane.finishCycle(~0ull);
        for (Soc &soc : ref)
            soc.finishCycle();
    }
    for (int i = 0; i < kLanes; i++) {
        ASSERT_EQ(lane.seqLane(i), ref[i].sim().seqState())
            << "seq state diverged on lane " << i;
        ASSERT_EQ(lane.envLane(i), ref[i].envState())
            << "environment diverged on lane " << i;
    }
}

} // namespace
} // namespace bespoke
