/**
 * @file
 * Gate-level simulator semantics: X propagation, flop latching
 * (including X-enable widening), forcing, snapshot/restore, and the
 * activity/toggle trackers.
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"

namespace bespoke
{
namespace
{

TEST(GateSim, XPropagatesAndControllingValuesDominate)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId c = nl.addInput("c");
    GateId g_and = b.and2(a, c);
    GateId g_or = b.or2(a, c);
    nl.addOutput("and", g_and);
    nl.addOutput("or", g_or);

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::X);
    sim.setInput(c, Logic::Zero);
    sim.evalComb();
    EXPECT_EQ(sim.value(g_and), Logic::Zero);  // 0 controls AND
    EXPECT_EQ(sim.value(g_or), Logic::X);
    sim.setInput(c, Logic::One);
    sim.evalComb();
    EXPECT_EQ(sim.value(g_and), Logic::X);
    EXPECT_EQ(sim.value(g_or), Logic::One);    // 1 controls OR
}

TEST(GateSim, DffLatchesAndDffeHolds)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId d = nl.addInput("d");
    GateId en = nl.addInput("en");
    GateId q1 = b.dff(d, true);   // reset value 1
    GateId q2 = b.dffe(d, en, false);
    nl.addOutput("q1", q1);
    nl.addOutput("q2", q2);

    GateSim sim(nl);
    sim.reset();
    EXPECT_EQ(sim.value(q1), Logic::One);
    EXPECT_EQ(sim.value(q2), Logic::Zero);

    sim.setInput(d, Logic::One);
    sim.setInput(en, Logic::Zero);
    sim.evalComb();
    sim.latchSequential();
    EXPECT_EQ(sim.value(q1), Logic::One);
    EXPECT_EQ(sim.value(q2), Logic::Zero);  // enable low: held

    sim.setInput(en, Logic::One);
    sim.evalComb();
    sim.latchSequential();
    EXPECT_EQ(sim.value(q2), Logic::One);

    // X enable with differing D/Q widens to X; with agreeing stays.
    sim.setInput(d, Logic::Zero);
    sim.setInput(en, Logic::X);
    sim.evalComb();
    sim.latchSequential();
    EXPECT_EQ(sim.value(q2), Logic::X);
    sim.setInput(d, Logic::X);
    sim.setInput(en, Logic::One);
    sim.evalComb();
    sim.latchSequential();
    EXPECT_EQ(sim.value(q2), Logic::X);
}

TEST(GateSim, ForceOverridesAndClears)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.inv(a);
    GateId g2 = b.inv(g);
    nl.addOutput("o", g2);

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::X);
    sim.evalComb();
    EXPECT_EQ(sim.value(g2), Logic::X);

    sim.force(g, Logic::One);
    sim.evalComb();
    EXPECT_EQ(sim.value(g), Logic::One);
    EXPECT_EQ(sim.value(g2), Logic::Zero);  // downstream sees force

    sim.clearForces();
    sim.evalComb();
    EXPECT_EQ(sim.value(g2), Logic::X);
}

TEST(GateSim, SnapshotRestoreRoundTrip)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId d = nl.addInput("d");
    Bus q = b.regBusAlways({d, b.inv(d), b.buf(d)}, 0);
    b.outputBus("q", q);

    GateSim sim(nl);
    sim.reset();
    sim.setInput(d, Logic::One);
    sim.evalComb();
    sim.latchSequential();
    SeqState snap = sim.seqState();

    sim.setInput(d, Logic::Zero);
    sim.evalComb();
    sim.latchSequential();
    EXPECT_EQ(sim.value(q[0]), Logic::Zero);

    sim.restoreSeqState(snap);
    EXPECT_EQ(sim.value(q[0]), Logic::One);
    EXPECT_EQ(sim.value(q[1]), Logic::Zero);
}

TEST(ActivityTracker, TogglesAndConstants)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId toggler = b.inv(a);
    GateId constant = b.and2(a, b.tie0());  // always 0
    nl.addOutput("t", toggler);
    nl.addOutput("c", constant);

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::Zero);
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    EXPECT_FALSE(tracker.toggled(toggler));

    sim.setInput(a, Logic::One);
    sim.evalComb();
    tracker.observe(sim);
    EXPECT_TRUE(tracker.toggled(toggler));
    EXPECT_FALSE(tracker.toggled(constant));
    EXPECT_EQ(tracker.initialValue(constant), Logic::Zero);
}

TEST(ActivityTracker, XCountsAsToggled)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.buf(a);
    nl.addOutput("o", g);

    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::Zero);
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    sim.setInput(a, Logic::X);
    sim.evalComb();
    tracker.observe(sim);
    EXPECT_TRUE(tracker.toggled(g));
}

TEST(ActivityTracker, InitialXIsToggled)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.buf(a);
    nl.addOutput("o", g);
    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::X);
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    // No proven constant: must be treated as toggleable.
    EXPECT_TRUE(tracker.toggled(g));
}

TEST(ToggleCounter, CountsTransitions)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.buf(a);
    nl.addOutput("o", g);
    GateSim sim(nl);
    sim.reset();
    ToggleCounter tc(nl);
    Logic seq[] = {Logic::Zero, Logic::One, Logic::One, Logic::Zero,
                   Logic::One};
    for (Logic v : seq) {
        sim.setInput(a, v);
        sim.evalComb();
        tc.observe(sim);
    }
    EXPECT_EQ(tc.count(g), 3u);  // 0->1, 1->0, 0->1
    EXPECT_EQ(tc.cycles(), 5u);
}

} // namespace
} // namespace bespoke
