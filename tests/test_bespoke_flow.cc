/**
 * @file
 * Integration tests of the end-to-end bespoke flow: tailored designs
 * shrink, still execute their application exactly (ISS cross-check and
 * symbolic equivalence), multi-application designs contain their
 * members' designs, and the coarse-grained module baseline is never
 * smaller than the fine-grained design.
 */

#include <gtest/gtest.h>

#include "src/bespoke/equiv_check.hh"
#include "src/bespoke/flow.hh"
#include "src/verify/runner.hh"

namespace bespoke
{
namespace
{

BespokeFlow &
flow()
{
    static BespokeFlow f = [] {
        FlowOptions opts;
        opts.powerInputsPerWorkload = 1;
        return BespokeFlow(opts);
    }();
    return f;
}

TEST(BespokeFlow, TailoredDesignShrinksAndStillRuns)
{
    for (const char *name : {"div", "binSearch", "convEn"}) {
        const Workload &w = workloadByName(name);
        BespokeDesign d = flow().tailor(w);
        DesignMetrics base = flow().measureBaseline({&w});

        EXPECT_LT(d.metrics.gates, base.gates) << name;
        EXPECT_LT(d.metrics.areaUm2, base.areaUm2) << name;
        EXPECT_LT(d.metrics.powerNominal.totalUW(),
                  base.powerNominal.totalUW())
            << name;
        // No performance cost: same clock, and the design still meets
        // it (slack can only be exposed, never lost).
        EXPECT_LE(d.metrics.criticalPathPs, flow().clockPeriodPs())
            << name;

        AsmProgram prog = w.assembleProgram();
        Rng rng(17);
        for (int t = 0; t < 2; t++) {
            WorkloadInput in = w.genInput(rng);
            IssRun ir = runWorkloadIss(w, in);
            GateRun gr = runWorkloadGate(d.netlist, w, prog, in);
            RunDiff diff = compareRuns(ir, gr, w);
            EXPECT_TRUE(diff.ok) << name << ": " << diff.detail;
            // Identical cycle count: zero performance degradation.
            GateRun gr_base =
                runWorkloadGate(flow().baseline(), w, prog, in);
            EXPECT_EQ(gr.cycles, gr_base.cycles) << name;
        }
    }
}

TEST(BespokeFlow, SymbolicEquivalenceOfTailoredDesigns)
{
    for (const char *name : {"intAVG", "mult"}) {
        const Workload &w = workloadByName(name);
        BespokeDesign d = flow().tailor(w);
        AsmProgram prog = w.assembleProgram();
        EquivResult eq = checkSymbolicEquivalence(flow().baseline(),
                                                  d.netlist, prog);
        EXPECT_TRUE(eq.equivalent) << name << ": " << eq.firstMismatch;
        EXPECT_TRUE(eq.completed) << name;
        EXPECT_GT(eq.outputsCompared, 1000u) << name;
    }
}

TEST(BespokeFlow, MultiAppDesignCoversMembers)
{
    const Workload &a = workloadByName("div");
    const Workload &b = workloadByName("tHold");
    BespokeDesign da = flow().tailor(a);
    BespokeDesign db = flow().tailor(b);
    BespokeDesign dm = flow().tailorMulti({&a, &b});

    // Union design is at least as large as each member and no larger
    // than the baseline.
    EXPECT_GE(dm.metrics.gates,
              std::max(da.metrics.gates, db.metrics.gates));
    EXPECT_LE(dm.metrics.gates, flow().baseline().numCells());

    // It runs BOTH applications correctly.
    Rng rng(5);
    for (const Workload *w : {&a, &b}) {
        AsmProgram prog = w->assembleProgram();
        WorkloadInput in = w->genInput(rng);
        IssRun ir = runWorkloadIss(*w, in);
        GateRun gr = runWorkloadGate(dm.netlist, *w, prog, in);
        RunDiff diff = compareRuns(ir, gr, *w);
        EXPECT_TRUE(diff.ok) << w->name << ": " << diff.detail;
    }
}

TEST(BespokeFlow, CoarseNeverSmallerThanFine)
{
    for (const char *name : {"binSearch", "tea8"}) {
        const Workload &w = workloadByName(name);
        BespokeDesign fine = flow().tailor(w);
        BespokeDesign coarse = flow().tailorCoarse(w);
        EXPECT_GE(coarse.metrics.gates, fine.metrics.gates) << name;
        EXPECT_GE(coarse.metrics.areaUm2, fine.metrics.areaUm2)
            << name;
        // The coarse design must also still run the application.
        AsmProgram prog = w.assembleProgram();
        Rng rng(23);
        WorkloadInput in = w.genInput(rng);
        IssRun ir = runWorkloadIss(w, in);
        GateRun gr = runWorkloadGate(coarse.netlist, w, prog, in);
        EXPECT_TRUE(compareRuns(ir, gr, w).ok) << name;
    }
}

TEST(BespokeFlow, VminNeverAboveNominalAndSlackConsistent)
{
    const Workload &w = workloadByName("binSearch");
    BespokeDesign d = flow().tailor(w);
    EXPECT_LE(d.metrics.vmin, 1.0);
    EXPECT_GE(d.metrics.vmin, 0.5);
    EXPECT_GE(d.metrics.slackFraction, 0.0);
    EXPECT_LE(d.metrics.powerAtVmin.totalUW(),
              d.metrics.powerNominal.totalUW());
}

TEST(BespokeFlow, EquivalenceCheckerDetectsRealDifferences)
{
    // Negative test: tailor to app A but check equivalence against a
    // DIFFERENT app whose execution needs gates A never uses. The
    // checker must flag non-equivalence (or at minimum not certify
    // equivalence with full completion and zero mismatches while the
    // designs produce different known outputs).
    const Workload &a = workloadByName("binSearch");
    const Workload &b = workloadByName("mult");
    BespokeDesign da = flow().tailor(a);
    AsmProgram prog_b = b.assembleProgram();
    EquivResult eq = checkSymbolicEquivalence(flow().baseline(),
                                              da.netlist, prog_b);
    EXPECT_FALSE(eq.equivalent && eq.completed)
        << "binSearch-tailored core cannot be equivalent to the "
           "baseline when running mult";
}

} // namespace
} // namespace bespoke
