/**
 * @file
 * Regression tests for Frontier batch popping at the quiescence edge.
 *
 * The lane-batching analysis workers ask the frontier for up to one
 * item per plane lane. The original pop() + popMore() pair took the
 * frontier lock twice, so when several batching workers raced a
 * frontier holding fewer states than one batch (the quiescence edge —
 * e.g. 3 states left, 64 lanes requested), a second worker could wake
 * between the two acquisitions and both would come away with splinter
 * batches of work that fit entirely in one. popBatch() drains in a
 * single critical section; these tests pin:
 *
 *  - exact LIFO drain order, single- and multi-threaded;
 *  - a 3-state frontier at popBatch(64) with 4 threads lands in ONE
 *    worker's batch, whole;
 *  - no deadlock: losing workers block until the winner finishes its
 *    items, then unblock with a clean quiescent false;
 *  - popMore() stays non-blocking and never over-pops.
 */

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/frontier.hh"

namespace bespoke
{
namespace
{

/** A work item tagged through lastFetchPc so drain order is visible. */
WorkItem
tagged(uint16_t tag, uint32_t depth = 0)
{
    WorkItem it;
    it.state.lastFetchPc = tag;
    it.depth = depth;
    return it;
}

std::vector<uint16_t>
tagsOf(const std::vector<WorkItem> &items)
{
    std::vector<uint16_t> tags;
    for (const WorkItem &it : items)
        tags.push_back(it.state.lastFetchPc);
    return tags;
}

TEST(FrontierBatch, SingleThreadDrainsLifo)
{
    Frontier f{AnalysisOptions{}};
    for (uint16_t t = 1; t <= 3; t++)
        f.push(tagged(t));

    std::vector<WorkItem> batch;
    ASSERT_TRUE(f.popBatch(64, batch));
    EXPECT_EQ(tagsOf(batch), (std::vector<uint16_t>{3, 2, 1}));

    for (size_t i = 0; i < batch.size(); i++)
        f.finishItem();
    EXPECT_FALSE(f.popBatch(64, batch));
    EXPECT_TRUE(batch.empty());
    EXPECT_FALSE(f.capped());
}

TEST(FrontierBatch, BatchRespectsMaxAndLeavesRemainder)
{
    Frontier f{AnalysisOptions{}};
    for (uint16_t t = 1; t <= 5; t++)
        f.push(tagged(t));

    std::vector<WorkItem> batch;
    ASSERT_TRUE(f.popBatch(2, batch));
    EXPECT_EQ(tagsOf(batch), (std::vector<uint16_t>{5, 4}));

    // The remainder is still there, still LIFO.
    std::vector<WorkItem> rest;
    ASSERT_TRUE(f.popBatch(64, rest));
    EXPECT_EQ(tagsOf(rest), (std::vector<uint16_t>{3, 2, 1}));

    for (size_t i = 0; i < batch.size() + rest.size(); i++)
        f.finishItem();
    EXPECT_FALSE(f.popBatch(64, batch));
}

/**
 * The quiescence-edge scenario from the lane engine: 4 batching
 * workers, 64 lanes each, 3 frontier states. Exactly one worker must
 * receive all three states in LIFO order; the others must block (not
 * deadlock, not splinter the batch) until the winner finishes, then
 * observe the clean quiescent finish.
 */
TEST(FrontierBatch, ThreeStatesFourThreadsOneWholeBatch)
{
    constexpr int kThreads = 4;
    constexpr size_t kLanes = 64;

    for (int round = 0; round < 50; round++) {
        Frontier f{AnalysisOptions{}};
        for (uint16_t t = 1; t <= 3; t++)
            f.push(tagged(t));

        std::vector<std::vector<uint16_t>> got(kThreads);
        std::vector<std::thread> workers;
        for (int w = 0; w < kThreads; w++) {
            workers.emplace_back([&f, &got, w] {
                std::vector<WorkItem> batch;
                while (f.popBatch(kLanes, batch)) {
                    for (const WorkItem &it : batch)
                        got[w].push_back(it.state.lastFetchPc);
                    for (size_t i = 0; i < batch.size(); i++)
                        f.finishItem();
                }
            });
        }
        for (std::thread &t : workers)
            t.join();

        // All three states drained, by exactly one worker, in LIFO
        // order — no splinter batches.
        int winners = 0;
        for (int w = 0; w < kThreads; w++) {
            if (got[w].empty())
                continue;
            winners++;
            EXPECT_EQ(got[w], (std::vector<uint16_t>{3, 2, 1}))
                << "round " << round << " worker " << w;
        }
        EXPECT_EQ(winners, 1) << "round " << round;
        EXPECT_FALSE(f.capped());
    }
}

/**
 * Workers that push continuations while others block on an empty
 * stack: popBatch must wake them for the new work and still terminate
 * cleanly once the tree is exhausted.
 */
TEST(FrontierBatch, ContinuationsWakeBlockedWorkersNoDeadlock)
{
    constexpr int kThreads = 4;
    constexpr uint32_t kDepth = 7;  // 2^7 leaf items per root

    Frontier f{AnalysisOptions{}};
    f.push(tagged(1, 0));

    std::vector<uint64_t> drained(kThreads, 0);
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&f, &drained, w] {
            std::vector<WorkItem> batch;
            while (f.popBatch(64, batch)) {
                for (const WorkItem &it : batch) {
                    drained[w]++;
                    if (it.depth < kDepth) {
                        f.push(tagged(2, it.depth + 1));
                        f.push(tagged(3, it.depth + 1));
                    }
                }
                for (size_t i = 0; i < batch.size(); i++)
                    f.finishItem();
            }
        });
    }
    for (std::thread &t : workers)
        t.join();

    // Full binary tree of depth kDepth: 2^(kDepth+1) - 1 items.
    uint64_t total = 0;
    for (uint64_t d : drained)
        total += d;
    EXPECT_EQ(total, (1ull << (kDepth + 1)) - 1);
    EXPECT_FALSE(f.capped());
    EXPECT_EQ(f.pathsExplored(), total);
    EXPECT_EQ(f.maxForkDepth(), kDepth);
}

TEST(FrontierBatch, PopMoreIsNonBlockingAndBounded)
{
    Frontier f{AnalysisOptions{}};

    // Empty stack: returns 0 immediately (a blocking popMore would
    // hang this single-threaded test).
    std::vector<WorkItem> out;
    EXPECT_EQ(f.popMore(64, out), 0u);
    EXPECT_TRUE(out.empty());

    for (uint16_t t = 1; t <= 3; t++)
        f.push(tagged(t));

    // Appends (does not clear), respects max, drains LIFO.
    out.push_back(tagged(99));
    EXPECT_EQ(f.popMore(2, out), 2u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(tagsOf(out), (std::vector<uint16_t>{99, 3, 2}));
    EXPECT_EQ(f.popMore(64, out), 1u);
    EXPECT_EQ(out.back().state.lastFetchPc, 1);
    EXPECT_EQ(f.popMore(64, out), 0u);

    for (int i = 0; i < 3; i++)
        f.finishItem();
    std::vector<WorkItem> batch;
    EXPECT_FALSE(f.popBatch(64, batch));
}

TEST(FrontierBatch, PathBudgetCapsBatch)
{
    AnalysisOptions opts;
    opts.maxPaths = 2;
    Frontier f{opts};
    for (uint16_t t = 1; t <= 3; t++)
        f.push(tagged(t));

    std::vector<WorkItem> batch;
    ASSERT_TRUE(f.popBatch(64, batch));
    EXPECT_EQ(tagsOf(batch), (std::vector<uint16_t>{3, 2}));
    for (size_t i = 0; i < batch.size(); i++)
        f.finishItem();

    // The third state is still queued but the budget is spent: the
    // next pop declares the cap instead of handing out work.
    EXPECT_FALSE(f.popBatch(64, batch));
    EXPECT_TRUE(f.capped());
}

} // namespace
} // namespace bespoke
