/**
 * @file
 * Graceful resume of killed batch runs (suite deliberately named
 * JobResume so the TSan CI shard, which runs JobScheduler|Checkpoint,
 * does not pick up the fork+SIGKILL machinery).
 *
 * A child process runs a serial job queue against a checkpoint
 * directory and is SIGKILLed right after its first job completes —
 * mid-queue, with later jobs never started. Rerunning the same queue
 * against the same directory must (a) produce deterministic results
 * bit-identical to an uninterrupted run on a fresh store, and (b)
 * short-circuit the already-completed job entirely from checkpoints:
 * all stage artifacts hit, nothing recomputed.
 */

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/job_scheduler.hh"

namespace fs = std::filesystem;

namespace bespoke
{
namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "bespoke_" + name;
    fs::remove_all(dir);
    return dir;
}

std::vector<JobSpec>
resumeQueue()
{
    std::vector<JobSpec> queue;
    for (const char *app : {"mult", "div", "binSearch"}) {
        JobSpec spec;
        spec.id = std::string("tailor-") + app;
        spec.kind = "tailor";
        spec.apps = {app};
        queue.push_back(std::move(spec));
    }
    return queue;
}

SchedulerOptions
serialOpts(const std::string &dir)
{
    SchedulerOptions sopts;
    sopts.jobThreads = 1;
    sopts.workerThreads = 1;
    sopts.checkpointDir = dir;
    sopts.flow.powerInputsPerWorkload = 1;
    return sopts;
}

std::vector<JobResult>
runSerial(const std::vector<JobSpec> &queue, const std::string &dir)
{
    JobScheduler sched(serialOpts(dir));
    for (const JobSpec &spec : queue)
        sched.submit(spec);
    return sched.finish();
}

TEST(JobResume, KilledBatchResumesBitIdenticalAndShortCircuits)
{
    std::string dir = freshDir("job_resume");
    std::string sentinel = freshDir("job_resume_sentinel");
    std::vector<JobSpec> queue = resumeQueue();

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: run the queue serially; after the first job_done,
        // publish which job finished and stall so the parent's SIGKILL
        // lands mid-queue (job 2 running or not started, queue alive).
        SchedulerOptions sopts = serialOpts(dir);
        sopts.progress = [&](const JsonValue &ev) {
            if (ev.find("event")->asString() != "job_done")
                return;
            std::string tmp = sentinel + ".tmp";
            std::ofstream(tmp) << ev.find("job")->asString();
            fs::rename(tmp, sentinel);
            for (;;)
                pause();
        };
        JobScheduler sched(std::move(sopts));
        for (const JobSpec &spec : queue)
            sched.submit(spec);
        sched.finish();
        _exit(0);
    }

    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (!fs::exists(sentinel)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "child never completed its first job";
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    std::string first_done;
    std::ifstream(sentinel) >> first_done;
    ASSERT_EQ(first_done, "tailor-mult");

    // Reference: the same queue uninterrupted on a fresh store.
    std::string ref_dir = freshDir("job_resume_ref");
    std::vector<JobResult> reference = runSerial(queue, ref_dir);

    // Resume: rerun the killed batch against its directory.
    std::vector<JobResult> resumed = runSerial(queue, dir);

    ASSERT_EQ(resumed.size(), reference.size());
    for (size_t i = 0; i < resumed.size(); i++) {
        EXPECT_TRUE(resumed[i].ok) << resumed[i].error;
        EXPECT_EQ(resumed[i].deterministicJson().dump(),
                  reference[i].deterministicJson().dump())
            << "job " << reference[i].id;
    }

    // The job that completed before the kill replays purely from the
    // store: every stage artifact hits, nothing is recomputed.
    EXPECT_EQ(resumed[0].id, first_done);
    EXPECT_EQ(resumed[0].stages.size(), 0u);
    EXPECT_GE(resumed[0].checkpointHits, 3u);
    EXPECT_EQ(resumed[0].checkpointMisses, 0u);

    fs::remove_all(dir);
    fs::remove_all(ref_dir);
    fs::remove(sentinel);
}

} // namespace
} // namespace bespoke
