/**
 * @file
 * Timing and power model tests: STA on chains with known delays,
 * load-based sizing, alpha-power-law monotonicity, Vmin search, and
 * power accounting.
 */

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/power/power_model.hh"
#include "src/timing/sta.hh"

namespace bespoke
{
namespace
{

TEST(Timing, ChainDelayGrowsWithDepth)
{
    double last = 0.0;
    for (int depth : {2, 8, 32}) {
        Netlist nl;
        NetBuilder b(nl);
        GateId a = nl.addInput("a");
        GateId cur = a;
        for (int i = 0; i < depth; i++)
            cur = b.inv(cur);
        GateId q = b.dff(cur);
        nl.addOutput("o", q);
        TimingReport rep = analyzeTiming(nl);
        EXPECT_GT(rep.criticalPathPs, last);
        last = rep.criticalPathPs;
        // The reported path must end at the flop's D driver chain.
        EXPECT_GE(rep.criticalPath.size(), static_cast<size_t>(depth));
    }
}

TEST(Timing, LoadIncreasesDelay)
{
    auto critical_with_fanout = [](int fanout) {
        Netlist nl;
        NetBuilder b(nl);
        GateId a = nl.addInput("a");
        GateId g = b.inv(a);
        GateId x = b.inv(g);
        for (int i = 0; i < fanout; i++)
            nl.addOutput("o" + std::to_string(i), b.inv(g));
        nl.addOutput("x", x);
        return analyzeTiming(nl).criticalPathPs;
    };
    EXPECT_GT(critical_with_fanout(24), critical_with_fanout(1));
}

TEST(Timing, SizingReducesCriticalPathUnderLoad)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId heavy = b.inv(a);
    GateId sink = heavy;
    for (int i = 0; i < 30; i++)
        nl.addOutput("o" + std::to_string(i), b.inv(heavy));
    nl.addOutput("s", b.inv(sink));
    double before = analyzeTiming(nl).criticalPathPs;
    size_t upsized = sizeForLoads(nl);
    EXPECT_GT(upsized, 0u);
    double after = analyzeTiming(nl).criticalPathPs;
    EXPECT_LT(after, before);
}

TEST(Timing, DelayScaleMonotoneInVoltage)
{
    TimingParams p;
    double prev = 1e18;
    for (double v = 0.5; v <= 1.01; v += 0.05) {
        double s = delayScaleAtVoltage(v, p);
        EXPECT_LT(s, prev);
        prev = s;
    }
    EXPECT_NEAR(delayScaleAtVoltage(1.0, p), 1.0, 1e-9);
}

TEST(Timing, VminBehavesAtExtremes)
{
    TimingParams p;
    // No slack: stay at nominal.
    EXPECT_DOUBLE_EQ(vminForPeriod(1000.0, 1000.0, p), p.vNominal);
    // Huge slack: clamp at the floor.
    EXPECT_DOUBLE_EQ(vminForPeriod(10.0, 100000.0, p), p.vMinFloor);
    // Moderate slack: strictly between.
    double v = vminForPeriod(600.0, 1000.0, p);
    EXPECT_GT(v, p.vMinFloor);
    EXPECT_LT(v, p.vNominal);
    // More slack -> lower (or equal) Vmin.
    EXPECT_LE(vminForPeriod(500.0, 1000.0, p), v);
}

TEST(Power, AccountsAllComponentsAndScales)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    GateId g = b.inv(a);
    GateId q = b.dff(g);
    nl.addOutput("o", q);

    GateSim sim(nl);
    sim.reset();
    ToggleCounter tc(nl);
    for (int c = 0; c < 10; c++) {
        sim.setInput(a, logicOf(c % 2));
        sim.evalComb();
        tc.observe(sim);
        sim.latchSequential();
    }
    PowerReport rep = computePower(nl, tc);
    EXPECT_GT(rep.switchingUW, 0.0);
    EXPECT_GT(rep.clockUW, 0.0);
    EXPECT_GT(rep.leakageUW, 0.0);

    PowerReport half = scaleToVoltage(rep, 0.5);
    EXPECT_NEAR(half.totalUW(), rep.totalUW() * 0.25, 1e-9);
}

TEST(Power, IdleDesignStillLeaksButBarelySwitches)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    nl.addOutput("o", b.inv(a));
    GateSim sim(nl);
    sim.reset();
    sim.setInput(a, Logic::Zero);
    ToggleCounter tc(nl);
    for (int c = 0; c < 10; c++) {
        sim.evalComb();
        tc.observe(sim);
    }
    PowerReport rep = computePower(nl, tc);
    EXPECT_EQ(rep.switchingUW, 0.0);
    EXPECT_GT(rep.leakageUW, 0.0);
}

TEST(CellLibrary, ParameterSanity)
{
    for (int t = 0; t < kNumCellTypes; t++) {
        CellType type = static_cast<CellType>(t);
        if (cellPseudo(type))
            continue;
        EXPECT_GT(cellArea(type, Drive::X1), 0.0) << cellName(type,
                                                              Drive::X1);
        // Bigger drives: more area/leakage, lower resistance.
        EXPECT_GT(cellArea(type, Drive::X4), cellArea(type, Drive::X1));
        EXPECT_GT(cellLeakage(type, Drive::X4),
                  cellLeakage(type, Drive::X1));
        if (cellDriveRes(type, Drive::X1) > 0) {
            EXPECT_LT(cellDriveRes(type, Drive::X4),
                      cellDriveRes(type, Drive::X1));
        }
    }
    EXPECT_TRUE(cellSequential(CellType::DFF));
    EXPECT_TRUE(cellSequential(CellType::DFFE));
    EXPECT_FALSE(cellSequential(CellType::NAND2));
    EXPECT_EQ(cellName(CellType::NAND2, Drive::X2), "NAND2_X2");
}

} // namespace
} // namespace bespoke
