/**
 * @file
 * Parameterized semantic sweep: every format-I operation is executed
 * on the ISS over randomized operand pairs (word and byte mode) and
 * checked against an independently written reference for both the
 * result and all four condition flags. This is a second derivation of
 * the MSP430 flag rules, separate from both the ISS and the gate-level
 * ALU (which are themselves cross-checked by the lock-step tests).
 */

#include <deque>

#include <gtest/gtest.h>

#include "src/isa/assembler.hh"
#include "src/iss/iss.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

struct RefOut
{
    uint16_t result;
    bool writes;
    bool c, z, n, v;
    bool flags_valid;
};

/** Independent reference semantics (TI MSP430 user's guide rules). */
RefOut
reference(Op1 op, uint16_t src, uint16_t dst, bool bm, bool carry_in)
{
    const uint32_t mask = bm ? 0xffu : 0xffffu;
    const uint32_t sign = bm ? 0x80u : 0x8000u;
    src &= mask;
    dst &= mask;
    RefOut o{0, true, false, false, false, false, true};

    auto add3 = [&](uint32_t a, uint32_t b, uint32_t cin) {
        uint32_t wide = a + b + cin;
        o.result = static_cast<uint16_t>(wide & mask);
        o.c = wide > mask;
        o.z = o.result == 0;
        o.n = (o.result & sign) != 0;
        // Signed overflow: operands same sign, result different.
        bool as = (a & sign) != 0, bs = (b & sign) != 0;
        bool rs = (o.result & sign) != 0;
        o.v = as == bs && rs != as;
    };

    switch (op) {
      case Op1::MOV:
        o.result = static_cast<uint16_t>(src);
        o.flags_valid = false;
        break;
      case Op1::ADD:
        add3(dst, src, 0);
        break;
      case Op1::ADDC:
        add3(dst, src, carry_in ? 1 : 0);
        break;
      case Op1::SUB:
        add3(dst, ~src & mask, 1);
        break;
      case Op1::SUBC:
        add3(dst, ~src & mask, carry_in ? 1 : 0);
        break;
      case Op1::CMP:
        add3(dst, ~src & mask, 1);
        o.writes = false;
        break;
      case Op1::BIT:
      case Op1::AND:
        o.result = static_cast<uint16_t>(src & dst);
        o.z = o.result == 0;
        o.n = (o.result & sign) != 0;
        o.c = !o.z;
        o.v = false;
        o.writes = op == Op1::AND;
        break;
      case Op1::XOR:
        o.result = static_cast<uint16_t>(src ^ dst);
        o.z = o.result == 0;
        o.n = (o.result & sign) != 0;
        o.c = !o.z;
        o.v = (src & sign) && (dst & sign);
        break;
      case Op1::BIC:
        o.result = static_cast<uint16_t>(dst & ~src);
        o.flags_valid = false;
        break;
      case Op1::BIS:
        o.result = static_cast<uint16_t>(dst | src);
        o.flags_valid = false;
        break;
      default:
        o.flags_valid = false;
        break;
    }
    return o;
}

const char *
mnemonic(Op1 op)
{
    switch (op) {
      case Op1::MOV: return "mov";
      case Op1::ADD: return "add";
      case Op1::ADDC: return "addc";
      case Op1::SUB: return "sub";
      case Op1::SUBC: return "subc";
      case Op1::CMP: return "cmp";
      case Op1::BIT: return "bit";
      case Op1::AND: return "and";
      case Op1::XOR: return "xor";
      case Op1::BIC: return "bic";
      case Op1::BIS: return "bis";
      default: return "?";
    }
}

class Op1Sweep : public ::testing::TestWithParam<Op1>
{
};

TEST_P(Op1Sweep, WordAndByteSemantics)
{
    Op1 op = GetParam();
    Rng rng(static_cast<uint32_t>(op) * 31 + 7);
    static std::deque<AsmProgram> keep;

    for (int trial = 0; trial < 24; trial++) {
        uint16_t src = rng.word();
        uint16_t dst = rng.word();
        // Mix in boundary operands.
        if (trial < 3)
            src = (uint16_t[]){0, 0xffff, 0x8000}[trial];
        if (trial >= 3 && trial < 6)
            dst = (uint16_t[]){0, 0xffff, 0x7fff}[trial - 3];
        bool bm = trial % 2 == 1;
        bool cin = trial % 3 == 0;

        std::ostringstream src_text;
        src_text << "        .org 0xf000\n"
                 << "start:  mov #0x" << std::hex << src << ", r5\n"
                 << "        mov #0x" << dst << ", r6\n"
                 << (cin ? "        setc\n" : "        clrc\n")
                 << "        " << mnemonic(op) << (bm ? ".b" : "")
                 << " r5, r6\n"
                 << "halt:   jmp halt\n"
                 << "        .org 0xfffe\n        .word start\n";
        keep.push_back(assemble(src_text.str()));
        Iss iss(keep.back());
        ASSERT_EQ(iss.run(), StepResult::Halted);

        RefOut ref = reference(op, src, dst, bm, cin);
        // Non-writing ops (CMP/BIT) leave the full register value;
        // writing byte ops zero-extend into the register.
        uint16_t expect_r6 = ref.writes ? ref.result : dst;
        ASSERT_EQ(iss.reg(6), expect_r6)
            << mnemonic(op) << (bm ? ".b" : "") << " src=0x"
            << std::hex << src << " dst=0x" << dst;
        if (ref.flags_valid) {
            uint16_t sr = iss.sr();
            EXPECT_EQ((sr & kFlagC) != 0, ref.c) << "C " << trial;
            EXPECT_EQ((sr & kFlagZ) != 0, ref.z) << "Z " << trial;
            EXPECT_EQ((sr & kFlagN) != 0, ref.n) << "N " << trial;
            EXPECT_EQ((sr & kFlagV) != 0, ref.v) << "V " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, Op1Sweep,
    ::testing::Values(Op1::MOV, Op1::ADD, Op1::ADDC, Op1::SUB,
                      Op1::SUBC, Op1::CMP, Op1::BIT, Op1::AND,
                      Op1::XOR, Op1::BIC, Op1::BIS),
    [](const ::testing::TestParamInfo<Op1> &info) {
        return mnemonic(info.param);
    });

} // namespace
} // namespace bespoke
