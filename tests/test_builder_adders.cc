/**
 * @file
 * Non-default adder options (carry-lookahead and carry-select):
 * functional equivalence with the ripple-carry default (sums, every
 * per-bit carry, carry-out, for full and partial groups),
 * X-monotonicity mirroring tests/test_builder_x.cc, and the STA
 * property that motivates each — a measurably shorter critical path
 * than ripple at the same width, at a bounded cell-count premium.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"
#include "src/timing/sta.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

/** Same combinational harness as test_builder_x.cc. */
class XHarness
{
  public:
    XHarness() : builder_(netlist_) {}

    NetBuilder &b() { return builder_; }

    Bus
    in(const std::string &name, int width)
    {
        Bus bus = builder_.inputBus(name, width);
        inputs_.push_back(bus);
        return bus;
    }

    void
    out(const std::string &name, const Bus &bus)
    {
        builder_.outputBus(name, bus);
        outputs_[name] = bus;
    }

    void outBit(const std::string &name, GateId g) { out(name, Bus{g}); }

    size_t numInputs() const { return inputs_.size(); }
    const std::map<std::string, Bus> &outputs() const { return outputs_; }

    void
    eval(const std::vector<SWord> &values)
    {
        if (!sim_) {
            netlist_.validate();
            sim_ = std::make_unique<GateSim>(netlist_);
        }
        sim_->reset();
        ASSERT_EQ(values.size(), inputs_.size());
        for (size_t i = 0; i < values.size(); i++)
            sim_->setInputWord(inputs_[i], values[i]);
        sim_->evalComb();
    }

    SWord
    word(const std::string &name)
    {
        return sim_->busWord(outputs_.at(name));
    }

  private:
    Netlist netlist_;
    NetBuilder builder_;
    std::vector<Bus> inputs_;
    std::map<std::string, Bus> outputs_;
    std::unique_ptr<GateSim> sim_;
};

/** Same property check as test_builder_x.cc. */
void
checkXMonotone(XHarness &h, Rng &rng, int trials, int concretizations)
{
    for (int t = 0; t < trials; t++) {
        std::vector<SWord> sym;
        for (size_t i = 0; i < h.numInputs(); i++) {
            uint16_t known = rng.word() | rng.word();
            if (rng.chance(1, 8))
                known = 0xffff;
            sym.push_back(SWord(rng.word(), known));
        }
        h.eval(sym);
        std::map<std::string, SWord> symout;
        for (auto &[name, bus] : h.outputs())
            symout[name] = h.word(name);

        for (int c = 0; c < concretizations; c++) {
            std::vector<SWord> conc;
            for (SWord s : sym) {
                uint16_t fill = rng.word();
                conc.push_back(SWord::of(
                    static_cast<uint16_t>((s.val & s.known) |
                                          (fill & ~s.known))));
            }
            h.eval(conc);
            for (auto &[name, bus] : h.outputs()) {
                SWord cw = h.word(name);
                SWord sw = symout[name];
                for (int i = 0;
                     i < static_cast<int>(bus.size()); i++) {
                    ASSERT_TRUE(isKnown(cw.bit(i)))
                        << name << "[" << i
                        << "] X under concrete inputs";
                    if (isKnown(sw.bit(i))) {
                        ASSERT_EQ(sw.bit(i), cw.bit(i))
                            << name << "[" << i << "] trial " << t;
                    }
                }
            }
        }
    }
}

/**
 * CLA and ripple adders side by side in one netlist: identical sums,
 * identical per-bit carries, for the same random concrete inputs —
 * and both right against plain integer arithmetic. Widths cover full
 * groups (16, 8, 4), partial tail groups (13, 6, 3), and the
 * degenerate 1-bit adder.
 */
TEST(BuilderAdders, ClaMatchesRippleAndArithmetic)
{
    for (int width : {1, 3, 4, 6, 8, 13, 16}) {
        for (bool cin1 : {false, true}) {
            XHarness h;
            Bus a = h.in("a", width), b = h.in("b", width);
            GateId cin = cin1 ? h.b().tie1() : h.b().tie0();
            h.b().setAdderKind(AdderKind::Ripple);
            AddResult rip = h.b().adder(a, b, cin);
            h.b().setAdderKind(AdderKind::CarryLookahead);
            AddResult cla = h.b().adder(a, b, cin);
            AddResult clasub = h.b().subtractor(a, b);
            h.out("rsum", rip.sum);
            h.out("rcar", rip.carries);
            h.out("csum", cla.sum);
            h.out("ccar", cla.carries);
            h.out("dsum", clasub.sum);
            h.outBit("dnob", clasub.carryOut);

            Rng rng(7 + width);
            uint32_t mask = (1u << width) - 1;
            for (int t = 0; t < 200; t++) {
                uint32_t av = rng.word() & mask;
                uint32_t bv = rng.word() & mask;
                h.eval({SWord::of(static_cast<uint16_t>(av)),
                        SWord::of(static_cast<uint16_t>(bv))});

                uint32_t full = av + bv + (cin1 ? 1 : 0);
                SWord rsum = h.word("rsum"), csum = h.word("csum");
                ASSERT_EQ(rsum.known & mask, mask);
                ASSERT_EQ(csum.known & mask, mask);
                ASSERT_EQ(csum.val & mask, full & mask)
                    << "w=" << width << " a=" << av << " b=" << bv;
                ASSERT_EQ(csum.val & mask, rsum.val & mask);

                SWord rcar = h.word("rcar"), ccar = h.word("ccar");
                for (int i = 0; i < width; i++) {
                    uint32_t lowmask = (2u << i) - 1;
                    bool carry_out_i =
                        (((av & lowmask) + (bv & lowmask) +
                          (cin1 ? 1u : 0u)) >>
                         (i + 1)) != 0;
                    ASSERT_TRUE(isKnown(ccar.bit(i)));
                    ASSERT_EQ(knownValue(ccar.bit(i)), carry_out_i)
                        << "carry " << i << " w=" << width;
                    ASSERT_EQ(knownValue(rcar.bit(i)), carry_out_i);
                }

                uint32_t diff = (av - bv) & mask;
                SWord dsum = h.word("dsum"), dnob = h.word("dnob");
                ASSERT_EQ(dsum.val & mask, diff);
                ASSERT_TRUE(isKnown(dnob.bit(0)));
                ASSERT_EQ(knownValue(dnob.bit(0)), av >= bv);
            }
        }
    }
}

/**
 * Carry-select against ripple and integer arithmetic, same structure
 * as the CLA test: widths cover full 4-bit groups, partial tail
 * groups, a width that fits entirely in the rippled first group (3),
 * and the 1-bit degenerate case.
 */
TEST(BuilderAdders, CselMatchesRippleAndArithmetic)
{
    for (int width : {1, 3, 4, 6, 8, 13, 16}) {
        for (bool cin1 : {false, true}) {
            XHarness h;
            Bus a = h.in("a", width), b = h.in("b", width);
            GateId cin = cin1 ? h.b().tie1() : h.b().tie0();
            h.b().setAdderKind(AdderKind::Ripple);
            AddResult rip = h.b().adder(a, b, cin);
            h.b().setAdderKind(AdderKind::CarrySelect);
            AddResult sel = h.b().adder(a, b, cin);
            AddResult selsub = h.b().subtractor(a, b);
            h.out("rsum", rip.sum);
            h.out("rcar", rip.carries);
            h.out("ssum", sel.sum);
            h.out("scar", sel.carries);
            h.out("dsum", selsub.sum);
            h.outBit("dnob", selsub.carryOut);

            Rng rng(11 + width);
            uint32_t mask = (1u << width) - 1;
            for (int t = 0; t < 200; t++) {
                uint32_t av = rng.word() & mask;
                uint32_t bv = rng.word() & mask;
                h.eval({SWord::of(static_cast<uint16_t>(av)),
                        SWord::of(static_cast<uint16_t>(bv))});

                uint32_t full = av + bv + (cin1 ? 1 : 0);
                SWord rsum = h.word("rsum"), ssum = h.word("ssum");
                ASSERT_EQ(rsum.known & mask, mask);
                ASSERT_EQ(ssum.known & mask, mask);
                ASSERT_EQ(ssum.val & mask, full & mask)
                    << "w=" << width << " a=" << av << " b=" << bv;
                ASSERT_EQ(ssum.val & mask, rsum.val & mask);

                SWord rcar = h.word("rcar"), scar = h.word("scar");
                for (int i = 0; i < width; i++) {
                    uint32_t lowmask = (2u << i) - 1;
                    bool carry_out_i =
                        (((av & lowmask) + (bv & lowmask) +
                          (cin1 ? 1u : 0u)) >>
                         (i + 1)) != 0;
                    ASSERT_TRUE(isKnown(scar.bit(i)));
                    ASSERT_EQ(knownValue(scar.bit(i)), carry_out_i)
                        << "carry " << i << " w=" << width;
                    ASSERT_EQ(knownValue(rcar.bit(i)), carry_out_i);
                }

                uint32_t diff = (av - bv) & mask;
                SWord dsum = h.word("dsum"), dnob = h.word("dnob");
                ASSERT_EQ(dsum.val & mask, diff);
                ASSERT_TRUE(isKnown(dnob.bit(0)));
                ASSERT_EQ(knownValue(dnob.bit(0)), av >= bv);
            }
        }
    }
}

class ClaXMonotone : public ::testing::TestWithParam<uint32_t>
{
};

/** Mirrors XMonotone.AdderSubtractorIncrementer with the CLA kind. */
TEST_P(ClaXMonotone, AdderAndSubtractor)
{
    XHarness h;
    h.b().setAdderKind(AdderKind::CarryLookahead);
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult add = h.b().adder(a, b, h.b().tie0());
    h.out("sum", add.sum);
    h.out("carries", add.carries);
    AddResult sub = h.b().subtractor(a, b);
    h.out("diff", sub.sum);
    h.outBit("noborrow", sub.carryOut);

    Rng rng(GetParam());
    checkXMonotone(h, rng, 30, 8);
}

/** A 13-bit CLA exercises the partial tail group symbolically too. */
TEST_P(ClaXMonotone, PartialGroupWidth)
{
    XHarness h;
    h.b().setAdderKind(AdderKind::CarryLookahead);
    Bus a = h.in("a", 13), b = h.in("b", 13);
    AddResult add = h.b().adder(a, b, h.b().tie0());
    h.out("sum", add.sum);
    h.out("carries", add.carries);

    Rng rng(GetParam() + 500);
    checkXMonotone(h, rng, 30, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClaXMonotone,
                         ::testing::Values(31u, 32u, 33u));

class CselXMonotone : public ::testing::TestWithParam<uint32_t>
{
};

/**
 * Carry-select leans on MUX2 with a possibly-X select (the resolved
 * group carry), so the symbolic sweep matters more here than for CLA:
 * an X select must still resolve whenever both speculative branches
 * agree, and must never contradict any concretization.
 */
TEST_P(CselXMonotone, AdderAndSubtractor)
{
    XHarness h;
    h.b().setAdderKind(AdderKind::CarrySelect);
    Bus a = h.in("a", 16), b = h.in("b", 16);
    AddResult add = h.b().adder(a, b, h.b().tie0());
    h.out("sum", add.sum);
    h.out("carries", add.carries);
    AddResult sub = h.b().subtractor(a, b);
    h.out("diff", sub.sum);
    h.outBit("noborrow", sub.carryOut);

    Rng rng(GetParam());
    checkXMonotone(h, rng, 30, 8);
}

/** A 13-bit carry-select exercises the partial tail group too. */
TEST_P(CselXMonotone, PartialGroupWidth)
{
    XHarness h;
    h.b().setAdderKind(AdderKind::CarrySelect);
    Bus a = h.in("a", 13), b = h.in("b", 13);
    AddResult add = h.b().adder(a, b, h.b().tie0());
    h.out("sum", add.sum);
    h.out("carries", add.carries);

    Rng rng(GetParam() + 900);
    checkXMonotone(h, rng, 30, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CselXMonotone,
                         ::testing::Values(41u, 42u, 43u));

/** Builds a standalone N-bit adder design of the given kind. */
Netlist
adderDesign(AdderKind kind, int width)
{
    Netlist nl;
    NetBuilder b(nl, Module::Alu);
    b.setAdderKind(kind);
    Bus a = b.inputBus("a", width);
    Bus bb = b.inputBus("b", width);
    AddResult r = b.adder(a, bb, b.tie0());
    b.outputBus("sum", r.sum);
    b.outputBus("cout", Bus{r.carryOut});
    nl.validate();
    sizeForLoads(nl);
    return nl;
}

/**
 * The reason the option exists: STA must report a substantially
 * shorter critical path for the lookahead adder. On 16 bits the
 * ripple carry chain is ~2 levels/bit; 4-bit lookahead groups cut
 * that to ~4 levels/group, so we demand at least 25% reduction
 * (observed: ~45%) at a bounded cell-count premium.
 */
TEST(BuilderAdders, ClaShortensCriticalPath)
{
    Netlist ripple = adderDesign(AdderKind::Ripple, 16);
    Netlist cla = adderDesign(AdderKind::CarryLookahead, 16);

    TimingReport trip = analyzeTiming(ripple);
    TimingReport tcla = analyzeTiming(cla);
    EXPECT_LT(tcla.criticalPathPs, 0.75 * trip.criticalPathPs)
        << "ripple " << trip.criticalPathPs << " ps vs cla "
        << tcla.criticalPathPs << " ps";

    // The speed is bought with area, but boundedly so.
    EXPECT_GT(cla.numCells(), ripple.numCells());
    EXPECT_LT(cla.numCells(), 2 * ripple.numCells());
}

/**
 * Carry-select's design point: on 16 bits the resolved carry chain is
 * one 4-bit ripple (first group) plus one mux per later group, so the
 * critical path must come in well under ripple — we demand the same
 * 25% floor as CLA — while the duplicated-but-shared-PG sum logic
 * stays under 2x ripple's cell count (observed: 142 cells vs ripple's
 * 80 and CLA's 153 — the wide lookahead AND/OR terms cost more cells
 * than speculation here).
 */
TEST(BuilderAdders, CselShortensCriticalPath)
{
    Netlist ripple = adderDesign(AdderKind::Ripple, 16);
    Netlist csel = adderDesign(AdderKind::CarrySelect, 16);

    TimingReport trip = analyzeTiming(ripple);
    TimingReport tsel = analyzeTiming(csel);
    EXPECT_LT(tsel.criticalPathPs, 0.75 * trip.criticalPathPs)
        << "ripple " << trip.criticalPathPs << " ps vs csel "
        << tsel.criticalPathPs << " ps";

    // The speed is bought with area, but boundedly so.
    EXPECT_GT(csel.numCells(), ripple.numCells());
    EXPECT_LT(csel.numCells(), 2 * ripple.numCells());
}

} // namespace
} // namespace bespoke
