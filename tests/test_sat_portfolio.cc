/**
 * @file
 * Parallel-SAT determinism and incrementality contracts
 * (src/sat/portfolio, src/sat/cdcl, src/sat/never_toggle):
 *
 *  - shardRanges partitions are a pure function of the candidate count
 *    (never the thread count) and cover the index space exactly.
 *  - Fuzz: a solver extended incrementally (clauses added in batches,
 *    queries interleaved, shared assumption prefixes exercising trail
 *    saving) returns the same verdict at every stage as a fresh solver
 *    re-encoding the accumulated formula from scratch — and both agree
 *    with brute-force enumeration.
 *  - Clause-database reduction triggers on a long session and neither
 *    changes the verdict nor breaks bit-level determinism.
 *  - runPortfolio picks the identical winner at 1 and 4 threads.
 *  - The never-toggle prover's verdicts and solver statistics are
 *    bit-identical at --sat-threads 1 and 4 (the ISSUE-level identity
 *    the bench goldens rely on).
 *
 * Every test here is named SatPortfolio.* so the CI ThreadSanitizer
 * shard can select the whole racing surface with one -R filter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/cdcl.hh"
#include "src/sat/equiv_prover.hh"
#include "src/sat/never_toggle.hh"
#include "src/sat/portfolio.hh"
#include "src/sim/gate_sim.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/rng.hh"
#include "src/verify/runner.hh"
#include "src/workloads/workload.hh"

namespace bespoke::sat
{
namespace
{

/** A CNF over vars 1..n as literal lists (var 0 stays reserved). */
struct RandomCnf
{
    int nVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

RandomCnf
genCnf(Rng &rng, int max_vars)
{
    RandomCnf f;
    f.nVars = 1 + static_cast<int>(rng.next() % max_vars);
    int n_clauses =
        1 + static_cast<int>(rng.next() % (4 * f.nVars + 3));
    for (int c = 0; c < n_clauses; c++) {
        int width = 1 + static_cast<int>(rng.next() % 3);
        std::vector<Lit> cl;
        for (int k = 0; k < width; k++) {
            Var v = 1 + static_cast<Var>(rng.next() % f.nVars);
            cl.push_back(mkLit(v, rng.next() & 1));
        }
        f.clauses.push_back(std::move(cl));
    }
    return f;
}

/** Exhaustive satisfiability under fixed assumption literals. */
bool
bruteForceSat(int n_vars, const std::vector<std::vector<Lit>> &clauses,
              const std::vector<Lit> &assumptions)
{
    for (uint32_t m = 0; m < (1u << n_vars); m++) {
        auto holds = [&](Lit l) {
            bool v = (m >> (l.var() - 1)) & 1;
            return v != l.negated();
        };
        bool all = true;
        for (Lit a : assumptions)
            all = all && holds(a);
        for (size_t c = 0; all && c < clauses.size(); c++) {
            bool any = false;
            for (Lit l : clauses[c])
                any = any || holds(l);
            all = any;
        }
        if (all)
            return true;
    }
    return false;
}

TEST(SatPortfolio, ShardRangesAreAFunctionOfCountOnly)
{
    for (size_t n : {0ul, 1ul, 255ul, 256ul, 257ul, 1024ul, 3709ul,
                     100000ul})
    {
        std::vector<std::pair<size_t, size_t>> r =
            shardRanges(n, 256, 4);
        if (n == 0) {
            EXPECT_TRUE(r.empty());
            continue;
        }
        size_t expect =
            std::min<size_t>(4, (n + 255) / 256);
        ASSERT_EQ(r.size(), std::max<size_t>(1, expect));
        // Contiguous exact cover, balanced to within one candidate.
        size_t pos = 0, lo = n, hi = 0;
        for (auto &[b, e] : r) {
            EXPECT_EQ(b, pos);
            ASSERT_GT(e, b);
            lo = std::min(lo, e - b);
            hi = std::max(hi, e - b);
            pos = e;
        }
        EXPECT_EQ(pos, n);
        EXPECT_LE(hi - lo, 1u);
    }
}

/**
 * The incremental-extend contract the never-toggle and miter sessions
 * lean on: growing one solver (addClause between solves, assumption
 * prefixes shared across consecutive solves so the saved trail is
 * reused) answers every query exactly like a throwaway solver handed
 * the accumulated formula — and both match brute force.
 */
TEST(SatPortfolio, IncrementalExtendMatchesFreshEncodeOnRandomCnfs)
{
    int stages_checked = 0;
    for (uint64_t seed = 0; seed < 400; seed++) {
        Rng rng(seed * 977 + 13);
        RandomCnf f = genCnf(rng, 10);

        CdclSolver inc;
        for (int v = 0; v < f.nVars; v++)
            inc.newVar();

        // Feed clauses in three batches; after each batch run several
        // queries with a shared assumption prefix (trail saving) and
        // check them against a fresh re-encode plus brute force.
        size_t batch = f.clauses.size() / 3 + 1;
        std::vector<std::vector<Lit>> sofar;
        for (size_t start = 0; start < f.clauses.size();
             start += batch)
        {
            for (size_t c = start;
                 c < std::min(start + batch, f.clauses.size()); c++)
            {
                inc.addClause(f.clauses[c].data(),
                              f.clauses[c].size());
                sofar.push_back(f.clauses[c]);
            }
            Lit pre = mkLit(1 + static_cast<Var>(rng.next() %
                                                 f.nVars),
                            rng.next() & 1);
            for (int q = 0; q < 3; q++) {
                std::vector<Lit> assumps;
                if (q > 0)  // shared prefix on queries 1 and 2
                    assumps.push_back(pre);
                if (q == 2)
                    assumps.push_back(
                        mkLit(1 + static_cast<Var>(rng.next() %
                                                   f.nVars),
                              rng.next() & 1));

                SolveResult ri = inc.solve(assumps);

                CdclSolver fresh;
                for (int v = 0; v < f.nVars; v++)
                    fresh.newVar();
                for (const std::vector<Lit> &cl : sofar)
                    fresh.addClause(cl.data(), cl.size());
                SolveResult rf = fresh.solve(assumps);

                ASSERT_EQ(ri, rf)
                    << "seed " << seed << " stage " << start
                    << " query " << q;
                bool expect =
                    bruteForceSat(f.nVars, sofar, assumps);
                ASSERT_EQ(ri == SolveResult::Sat, expect)
                    << "seed " << seed << " stage " << start
                    << " query " << q;
                stages_checked++;
            }
        }
    }
    EXPECT_GT(stages_checked, 1000);
}

/** Pigeonhole PHP(holes+1, holes): small, UNSAT, conflict-heavy. */
void
encodePigeonhole(CdclSolver &s, int holes)
{
    int pigeons = holes + 1;
    auto var = [&](int p, int h) {
        return mkLit(static_cast<Var>(1 + p * holes + h), false);
    };
    for (int p = 0; p < pigeons; p++)
        for (int h = 0; h < holes; h++)
            s.newVar();
    for (int p = 0; p < pigeons; p++) {
        std::vector<Lit> cl;
        for (int h = 0; h < holes; h++)
            cl.push_back(var(p, h));
        s.addClause(cl.data(), cl.size());
    }
    for (int h = 0; h < holes; h++)
        for (int p = 0; p < pigeons; p++)
            for (int q = p + 1; q < pigeons; q++) {
                Lit cl[2] = {~var(p, h), ~var(q, h)};
                s.addClause(cl, 2);
            }
}

/**
 * A conflict-heavy UNSAT instance drives the learned set past the
 * reduction limit: the database reduction must actually fire, the
 * verdict must stay correct, and a second identical run must reproduce
 * every statistic bit-for-bit (reduction is part of the deterministic
 * search, not a wall-clock heuristic).
 */
TEST(SatPortfolio, DbReductionFiresAndStaysDeterministic)
{
    auto run = [](uint64_t *stats) {
        CdclSolver s;
        encodePigeonhole(s, 8);
        SolveResult r = s.solve();
        EXPECT_EQ(r, SolveResult::Unsat);
        stats[0] = s.conflicts();
        stats[1] = s.dbReductions();
        stats[2] = s.removedClauses();
        stats[3] = s.learnedClauses();
        stats[4] = s.keptClauses();
        stats[5] = s.propagations();
        stats[6] = s.restarts();
    };
    uint64_t a[7], b[7];
    run(a);
    run(b);
    EXPECT_GT(a[1], 0u) << "instance too easy to trigger reduceDB";
    EXPECT_GT(a[2], 0u);
    for (int i = 0; i < 7; i++)
        EXPECT_EQ(a[i], b[i]) << "stat " << i;
}

/**
 * The portfolio reduction rule in isolation: for EVERY pattern of
 * decisive/indecisive attempts the winner must be the lowest decisive
 * index, identical between the sequential scan and the 4-thread race —
 * including the rescue patterns where attempt 0 is indecisive and a
 * higher config must win, and the all-indecisive pattern.
 */
TEST(SatPortfolio, PortfolioWinnerIsLowestDecisiveAtAnyThreadCount)
{
    const int attempts = 4;
    for (unsigned mask = 0; mask < (1u << attempts); mask++) {
        int expected = -1;
        for (int i = 0; i < attempts; i++) {
            if ((mask >> i) & 1) {
                expected = i;
                break;
            }
        }
        for (int threads : {1, 4}) {
            std::vector<int> ran(attempts, 0);
            int w = runPortfolio(
                attempts, threads,
                [&](int idx, const std::atomic<bool> *) {
                    ran[idx] = 1;
                    return ((mask >> idx) & 1) != 0;
                });
            EXPECT_EQ(w, expected)
                << "mask " << mask << " threads " << threads;
            // The winner and everything below it must actually have
            // run (cancellation only reaches above the winner).
            for (int i = 0; i <= expected; i++)
                EXPECT_TRUE(ran[i]) << "mask " << mask;
        }
    }
}

/**
 * The same rule driven by real raced solvers: each attempt solves the
 * problem under its own portfolio config with a conflict budget, and
 * the 1-thread and 4-thread schedules must return the same winner and
 * the same verdict (a cancelled attempt reports indecisive and is
 * never the winner, so the race cannot leak wall-clock order into the
 * result).
 */
TEST(SatPortfolio, PortfolioWinnerIsThreadCountIndependent)
{
    for (uint64_t seed = 0; seed < 60; seed++) {
        Rng rng(seed * 31 + 7);
        RandomCnf f = genCnf(rng, 18);
        const uint64_t budget = 12;
        const int attempts = 4;

        auto race = [&](int threads, std::vector<SolveResult> *out) {
            out->assign(attempts, SolveResult::Unknown);
            return runPortfolio(
                attempts, threads,
                [&](int idx, const std::atomic<bool> *stop) {
                    CdclSolver s(portfolioConfig(idx));
                    s.setStopFlag(stop);
                    for (int v = 0; v < f.nVars; v++)
                        s.newVar();
                    for (const std::vector<Lit> &cl : f.clauses)
                        s.addClause(cl.data(), cl.size());
                    SolveResult r = s.solve({}, budget);
                    (*out)[idx] = r;
                    return r != SolveResult::Unknown;
                });
        };

        std::vector<SolveResult> serial, parallel;
        int w1 = race(1, &serial);
        int w4 = race(4, &parallel);
        ASSERT_EQ(w1, w4) << "seed " << seed;
        if (w1 >= 0)
            ASSERT_EQ(serial[w1], parallel[w4]) << "seed " << seed;
    }
}

/**
 * End-to-end --sat-threads identity on a real design: candidate shards
 * and solver sessions are partitioned by candidate count only, so the
 * full verdict vector AND the summed solver statistics of the
 * never-toggle prover must be bit-identical at 1 and 4 threads.
 */
TEST(SatPortfolio, NeverToggleVerdictsBitIdenticalAcrossThreadCounts)
{
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();
    AnalysisOptions aopts;
    aopts.concreteVisits = 1;  // widen: make SAT candidates plentiful
    AnalysisResult ar = analyzeActivity(core, app, aopts);
    ASSERT_TRUE(ar.completed);

    PassPipelineOptions popts;
    PassEnv env;
    Netlist nl = runTailorPipeline(core, ar.activity.get(), popts, env);

    // Candidate selection as the pass does it: zero-toggle gates, both
    // polarities where the replay is ambiguous between 1 and X.
    ToggleCounter tc(nl);
    {
        std::shared_ptr<const SocContext> sctx = SocContext::make(nl);
        GateBatchObservers obs;
        obs.toggles = &tc;
        Rng rng(0x1234);
        std::vector<WorkloadInput> in;
        for (int i = 0; i < 3; i++)
            in.push_back(app.genInput(rng));
        runWorkloadGateBatch(nl, app, prog, in, 64, obs, sctx);
    }
    std::vector<NeverToggleCandidate> cands;
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
            g.type == CellType::TIE1 || tc.count(i) != 0) {
            continue;
        }
        if (tc.lastValue(i) == Logic::Zero) {
            cands.push_back({i, false});
        } else {
            cands.push_back({i, true});
            cands.push_back({i, false});
        }
    }
    ASSERT_GT(cands.size(), 0u);

    NeverToggleOptions no;
    no.depth = 24;
    no.threads = 1;
    NeverToggleResult r1 = proveNeverToggling(nl, prog, cands, no);
    no.threads = 4;
    NeverToggleResult r4 = proveNeverToggling(nl, prog, cands, no);

    ASSERT_EQ(r1.proven.size(), r4.proven.size());
    for (size_t i = 0; i < r1.proven.size(); i++) {
        EXPECT_EQ(r1.proven[i].gate, r4.proven[i].gate);
        EXPECT_EQ(r1.proven[i].value, r4.proven[i].value);
    }
    EXPECT_EQ(r1.refuted, r4.refuted);
    EXPECT_EQ(r1.unknown, r4.unknown);
    EXPECT_EQ(r1.stats.baseConflicts, r4.stats.baseConflicts);
    EXPECT_EQ(r1.stats.stepConflicts, r4.stats.stepConflicts);
    EXPECT_EQ(r1.stats.queries, r4.stats.queries);
    EXPECT_EQ(r1.stats.propagations, r4.stats.propagations);
    EXPECT_EQ(r1.stats.learnedClauses, r4.stats.learnedClauses);
    EXPECT_EQ(r1.stats.keptClauses, r4.stats.keptClauses);
    EXPECT_EQ(r1.stats.dbReductions, r4.stats.dbReductions);
    EXPECT_EQ(r1.stats.restarts, r4.stats.restarts);
    EXPECT_EQ(r1.stats.shards, r4.stats.shards);
    EXPECT_GT(r1.stats.shards, 1u)
        << "cand set too small to exercise the sharded path";
}

/**
 * Same identity for the miter prover: verdict, winning config, and the
 * winner's solver statistics are thread-count independent.
 */
TEST(SatPortfolio, EquivProverVerdictIdenticalAcrossThreadCounts)
{
    const Workload &app = workloadByName("binSearch");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();

    SatEquivOptions so;
    so.depth = 6;
    so.threads = 1;
    SatEquivResult r1 = proveEquivalentSat(core, core, prog, so);
    so.threads = 4;
    SatEquivResult r4 = proveEquivalentSat(core, core, prog, so);

    EXPECT_EQ(r1.verdict, SatEquivVerdict::Equivalent);
    EXPECT_EQ(r1.verdict, r4.verdict);
    EXPECT_EQ(r1.config, r4.config);
    EXPECT_EQ(r1.depth, r4.depth);
    EXPECT_EQ(r1.conflicts, r4.conflicts);
    EXPECT_EQ(r1.propagations, r4.propagations);
    EXPECT_EQ(r1.queries, r4.queries);
}

} // namespace
} // namespace bespoke::sat
