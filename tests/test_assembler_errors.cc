/**
 * @file
 * Negative tests for the assembler (fatal diagnostics on malformed
 * source) plus utility-layer tests (table renderer, logging, ISA
 * string forms).
 */

#include <gtest/gtest.h>

#include "src/isa/assembler.hh"
#include "src/util/table.hh"

namespace bespoke
{
namespace
{

using AssemblerDeath = ::testing::Test;

TEST(AssemblerDeath, UnknownMnemonic)
{
    EXPECT_EXIT(assemble(".org 0xf000\n        frobnicate r5\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, UndefinedSymbol)
{
    EXPECT_EXIT(assemble(".org 0xf000\n        mov #nosuch, r5\n"),
                ::testing::ExitedWithCode(1), "undefined symbol");
}

TEST(AssemblerDeath, DuplicateLabel)
{
    EXPECT_EXIT(assemble(".org 0xf000\na:      nop\na:      nop\n"),
                ::testing::ExitedWithCode(1), "duplicate symbol");
}

TEST(AssemblerDeath, JumpOutOfRange)
{
    std::string src = ".org 0xf000\nfar:    nop\n";
    for (int i = 0; i < 600; i++)
        src += "        nop\n";
    src += "        jmp far\n";
    EXPECT_EXIT(assemble(src), ::testing::ExitedWithCode(1),
                "jump out of range");
}

TEST(AssemblerDeath, EmissionOutsideRom)
{
    EXPECT_EXIT(assemble(".org 0x0300\n        nop\n"),
                ::testing::ExitedWithCode(1), "outside ROM");
}

TEST(AssemblerDeath, WrongOperandCount)
{
    EXPECT_EXIT(assemble(".org 0xf000\n        mov r5\n"),
                ::testing::ExitedWithCode(1), "two operands");
}

TEST(AssemblerDeath, BadDestinationMode)
{
    EXPECT_EXIT(assemble(".org 0xf000\n        mov r5, @r6\n"),
                ::testing::ExitedWithCode(1), "destination");
}

TEST(Assembler, ByteModeEncoding)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
        mov.b r5, r6
        add.w r5, r6
    )");
    Instr b = decode(p.romWord(0xf000));
    EXPECT_TRUE(b.byteMode);
    Instr w = decode(p.romWord(0xf002));
    EXPECT_FALSE(w.byteMode);
}

TEST(Assembler, WordDirectiveLists)
{
    AsmProgram p = assemble(R"(
        .org 0xf000
        .word 1, 2, 3
        .space 4
        .word 0xbeef
    )");
    EXPECT_EQ(p.romWord(0xf000), 1);
    EXPECT_EQ(p.romWord(0xf004), 3);
    EXPECT_EQ(p.romWord(0xf006), 0);
    EXPECT_EQ(p.romWord(0xf00a), 0xbeef);
}

TEST(Isa, ToStringForms)
{
    EXPECT_EQ(decode(encodeDoubleOp(Op1::ADD, 5, AddrMode::Register, 6,
                                    AddrMode::Register, false))
                  .toString(),
              "add r5, r6");
    EXPECT_EQ(decode(encodeSingleOp(Op2::PUSH, 7, AddrMode::Register,
                                    false))
                  .toString(),
              "push r7");
    EXPECT_EQ(decode(encodeJump(JumpCond::JNE, -3)).toString(),
              "jne -3");
    EXPECT_EQ(decode(0xa000).toString(), "illegal");
}

TEST(Table, RendersAlignedCells)
{
    Table t({"name", "value"});
    t.row().add("alpha").add(3.14159, 2);
    t.row().add("b").add(42l);
    std::string out = t.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 3.14  |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 42    |"), std::string::npos);
}

TEST(Table, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.0 / 3.0, 3), "0.333");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

} // namespace
} // namespace bespoke
