/**
 * @file
 * Determinism of coverage-directed input generation (Table 3 front
 * end) across execution knobs.
 *
 * generateCoverageInputs scores candidate inputs in plane-width-sized
 * batches but reduces them strictly in draw order, so the selected
 * vectors are a function of (workload, seed, max_inputs, plateau)
 * only. These tests pin that: the same seed yields byte-identical
 * input sets at every plane width (BESPOKE_PLANE_BITS 64/128/256/512),
 * and repeated runs are stable. A divergence here means the batch
 * reduction order leaked into the selection — exactly the regression
 * the lane-batched scoring must not introduce.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/verify/coverage_gen.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

/** Scoped BESPOKE_PLANE_BITS override (restores on destruction). */
class PlaneBitsEnv
{
  public:
    explicit PlaneBitsEnv(const char *value)
    {
        if (const char *old = std::getenv("BESPOKE_PLANE_BITS")) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv("BESPOKE_PLANE_BITS", value, 1);
        else
            unsetenv("BESPOKE_PLANE_BITS");
    }
    ~PlaneBitsEnv()
    {
        if (had_)
            setenv("BESPOKE_PLANE_BITS", old_.c_str(), 1);
        else
            unsetenv("BESPOKE_PLANE_BITS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

void
expectSameInputs(const CoverageInputs &a, const CoverageInputs &b,
                 const char *what)
{
    EXPECT_EQ(a.totalGenerated, b.totalGenerated) << what;
    EXPECT_EQ(a.linePct, b.linePct) << what;
    EXPECT_EQ(a.branchPct, b.branchPct) << what;
    EXPECT_EQ(a.branchDirPct, b.branchDirPct) << what;
    ASSERT_EQ(a.inputs.size(), b.inputs.size()) << what;
    for (size_t i = 0; i < a.inputs.size(); i++) {
        EXPECT_EQ(a.inputs[i].ramWords, b.inputs[i].ramWords)
            << what << " input " << i;
        EXPECT_EQ(a.inputs[i].gpioIn, b.inputs[i].gpioIn)
            << what << " input " << i;
        EXPECT_EQ(a.inputs[i].extraRam, b.inputs[i].extraRam)
            << what << " input " << i;
    }
}

TEST(CoverageGen, SelectionIndependentOfPlaneBits)
{
    for (const char *name : {"binSearch", "rle"}) {
        SCOPED_TRACE(name);
        const Workload &w = workloadByName(name);

        CoverageInputs ref;
        {
            PlaneBitsEnv env(nullptr);  // default width
            ref = generateCoverageInputs(w, 64, 8, 7);
        }
        EXPECT_FALSE(ref.inputs.empty());

        for (const char *bits : {"64", "128", "256", "512"}) {
            PlaneBitsEnv env(bits);
            CoverageInputs got = generateCoverageInputs(w, 64, 8, 7);
            expectSameInputs(ref, got,
                            (std::string(name) + " @" + bits).c_str());
        }
    }
}

TEST(CoverageGen, SameSeedIsStable)
{
    const Workload &w = workloadByName("tea8");
    CoverageInputs a = generateCoverageInputs(w, 48, 8, 21);
    CoverageInputs b = generateCoverageInputs(w, 48, 8, 21);
    expectSameInputs(a, b, "repeat run");
}

TEST(CoverageGen, DifferentSeedsDiffer)
{
    // Not a determinism property per se, but guards against the
    // generator ignoring its seed (which would make the determinism
    // tests above vacuous).
    const Workload &w = workloadByName("binSearch");
    CoverageInputs a = generateCoverageInputs(w, 48, 8, 7);
    CoverageInputs b = generateCoverageInputs(w, 48, 8, 8);
    bool any_diff = a.inputs.size() != b.inputs.size();
    for (size_t i = 0; !any_diff && i < a.inputs.size(); i++)
        any_diff = a.inputs[i].ramWords != b.inputs[i].ramWords;
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace bespoke
