/**
 * @file
 * Workload suite validation: every benchmark assembles, halts on the
 * ISS for many random inputs, computes functionally correct results
 * (spot-checked against C reference implementations), and matches the
 * gate-level core end-to-end.
 */

#include <set>

#include <gtest/gtest.h>

#include "src/cpu/bsp430.hh"
#include "src/verify/runner.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

const Netlist &
cpuNetlist()
{
    static Netlist nl = buildBsp430();
    return nl;
}

class WorkloadParam : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadParam, AssemblesAndHaltsOnIss)
{
    const Workload &w = workloadByName(GetParam());
    Rng rng(1234);
    for (int trial = 0; trial < 8; trial++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted)
            << w.name << " trial " << trial;
        EXPECT_GT(r.instructions, 5u);
    }
}

TEST_P(WorkloadParam, GateLevelMatchesIss)
{
    const Workload &w = workloadByName(GetParam());
    AsmProgram prog = w.assembleProgram();
    Rng rng(99);
    for (int trial = 0; trial < 2; trial++) {
        WorkloadInput in = w.genInput(rng);
        IssRun ir = runWorkloadIss(w, in);
        GateRun gr = runWorkloadGate(cpuNetlist(), w, prog, in);
        RunDiff d = compareRuns(ir, gr, w);
        EXPECT_TRUE(d.ok) << w.name << " trial " << trial << ": "
                          << d.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParam,
    ::testing::Values("binSearch", "div", "inSort", "intAVG", "intFilt",
                      "mult", "rle", "tHold", "tea8", "FFT", "viterbi",
                      "convEn", "autocorr", "irq", "dbg",
                      "intFilt-scrambled", "subneg", "minios"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Workloads, RegistryComplete)
{
    EXPECT_EQ(workloads().size(), 15u);
    EXPECT_EQ(extraWorkloads().size(), 3u);
    EXPECT_EQ(extendedWorkloads().size(), 2u);
    // Every registered workload has a generator and a unique name.
    std::set<std::string> names;
    for (const auto *set : {&workloads(), &extraWorkloads(),
                            &extendedWorkloads()}) {
        for (const Workload &w : *set) {
            EXPECT_TRUE(w.genInput != nullptr) << w.name;
            EXPECT_TRUE(names.insert(w.name).second)
                << "duplicate " << w.name;
        }
    }
}

// --------------------------------------------------------------------
// Functional spot checks against C reference implementations.
// --------------------------------------------------------------------

TEST(WorkloadsFunctional, DivMatchesReference)
{
    const Workload &w = workloadByName("div");
    Rng rng(7);
    for (int t = 0; t < 20; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        uint16_t a = in.ramWords[0], b = in.ramWords[1];
        EXPECT_EQ(r.out[0], a / b);
        EXPECT_EQ(r.out[1], a % b);
    }
}

TEST(WorkloadsFunctional, BinSearchFindsKeys)
{
    const Workload &w = workloadByName("binSearch");
    Rng rng(8);
    for (int t = 0; t < 20; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        uint16_t key = in.ramWords[16];
        bool present = false;
        for (int i = 0; i < 16; i++)
            present |= in.ramWords[i] == key;
        if (present) {
            ASSERT_NE(r.out[0], 0xffff);
            EXPECT_EQ(in.ramWords[r.out[0]], key);
        } else {
            EXPECT_EQ(r.out[0], 0xffff);
        }
    }
}

TEST(WorkloadsFunctional, InSortSorts)
{
    const Workload &w = workloadByName("inSort");
    Rng rng(9);
    for (int t = 0; t < 10; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        std::vector<int16_t> expect;
        for (uint16_t v : in.ramWords)
            expect.push_back(static_cast<int16_t>(v));
        std::sort(expect.begin(), expect.end());
        for (int i = 0; i < 12; i++) {
            EXPECT_EQ(static_cast<int16_t>(r.out[i]), expect[i])
                << "position " << i;
        }
    }
}

TEST(WorkloadsFunctional, MultMatchesReference)
{
    const Workload &w = workloadByName("mult");
    Rng rng(10);
    WorkloadInput in = w.genInput(rng);
    IssRun r = runWorkloadIss(w, in);
    ASSERT_EQ(r.result, StepResult::Halted);
    for (int i = 0; i < 4; i++) {
        uint32_t p = static_cast<uint32_t>(in.ramWords[i]) *
                     in.ramWords[4 + i];
        EXPECT_EQ(r.out[i], p & 0xffff);
    }
}

TEST(WorkloadsFunctional, IntAvgMatchesReference)
{
    const Workload &w = workloadByName("intAVG");
    Rng rng(11);
    for (int t = 0; t < 10; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        int64_t sum = 0;
        for (uint16_t v : in.ramWords)
            sum += static_cast<int16_t>(v);
        int64_t avg = sum >> 4;
        EXPECT_EQ(static_cast<int16_t>(r.out[0]),
                  static_cast<int16_t>(avg & 0xffff));
    }
}

TEST(WorkloadsFunctional, RleRoundTrips)
{
    const Workload &w = workloadByName("rle");
    Rng rng(12);
    for (int t = 0; t < 10; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        // Decode the RLE stream from RAM and compare to the input.
        std::vector<uint8_t> original;
        for (uint16_t word : in.ramWords) {
            original.push_back(static_cast<uint8_t>(word & 0xff));
            original.push_back(static_cast<uint8_t>(word >> 8));
        }
        std::vector<uint8_t> decoded;
        uint16_t addr = kOutputBase;
        while (true) {
            uint8_t count = static_cast<uint8_t>(
                r.ram[addr - kRamBase]);
            if (count == 0)
                break;
            uint8_t value = static_cast<uint8_t>(
                r.ram[addr + 1 - kRamBase]);
            for (int i = 0; i < count; i++)
                decoded.push_back(value);
            addr += 2;
        }
        EXPECT_EQ(decoded, original);
    }
}

TEST(WorkloadsFunctional, ConvEnMatchesReference)
{
    const Workload &w = workloadByName("convEn");
    Rng rng(13);
    for (int t = 0; t < 10; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        uint16_t data = in.ramWords[0];
        uint32_t stream = 0;
        int state = 0;
        for (int i = 15; i >= 0; i--) {
            int bit = (data >> i) & 1;
            int reg = ((state << 1) | bit) & 7;
            int g0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1;
            int g1 = ((reg >> 2) ^ reg) & 1;
            stream = (stream << 1) | static_cast<uint32_t>(g0);
            stream = (stream << 1) | static_cast<uint32_t>(g1);
            state = reg & 3;
        }
        uint32_t got = r.out[0] | (static_cast<uint32_t>(r.out[1])
                                   << 16);
        EXPECT_EQ(got, stream);
    }
}

TEST(WorkloadsFunctional, ViterbiDecodesCleanStream)
{
    const Workload &w = workloadByName("viterbi");
    Rng rng(14);
    int clean_ok = 0, trials = 0;
    for (int t = 0; t < 20; t++) {
        WorkloadInput in = w.genInput(rng);
        // Recover the transmitted byte by re-encoding all 256 and
        // finding an exact symbol match (only for clean streams).
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        for (int data = 0; data < 256; data++) {
            int state = 0;
            bool match = true;
            for (int i = 7; i >= 0; i--) {
                int bit = (data >> i) & 1;
                int reg = ((state << 1) | bit) & 7;
                int g0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1;
                int g1 = ((reg >> 2) ^ reg) & 1;
                if (in.ramWords[7 - i] !=
                    static_cast<uint16_t>((g0 << 1) | g1)) {
                    match = false;
                    break;
                }
                state = reg & 3;
            }
            if (match) {
                trials++;
                EXPECT_EQ(r.out[0], data)
                    << "clean-stream decode failed";
                clean_ok++;
                break;
            }
        }
    }
    EXPECT_GT(trials, 5);  // most generated streams are clean
}

TEST(WorkloadsFunctional, AutocorrMatchesReference)
{
    const Workload &w = workloadByName("autocorr");
    Rng rng(15);
    WorkloadInput in = w.genInput(rng);
    IssRun r = runWorkloadIss(w, in);
    ASSERT_EQ(r.result, StepResult::Halted);
    for (int k = 0; k < 4; k++) {
        int64_t acc = 0;
        for (int i = 0; i < 12 - k; i++) {
            acc += static_cast<int64_t>(
                       static_cast<int16_t>(in.ramWords[i])) *
                   static_cast<int16_t>(in.ramWords[i + k]);
        }
        uint32_t got = r.out[2 * k] |
                       (static_cast<uint32_t>(r.out[2 * k + 1]) << 16);
        EXPECT_EQ(got, static_cast<uint32_t>(acc & 0xffffffff))
            << "lag " << k;
    }
}

TEST(WorkloadsFunctional, Tea8MatchesReference)
{
    const Workload &w = workloadByName("tea8");
    Rng rng(16);
    WorkloadInput in = w.genInput(rng);
    IssRun r = runWorkloadIss(w, in);
    ASSERT_EQ(r.result, StepResult::Halted);
    uint32_t v0 = in.ramWords[0] |
                  (static_cast<uint32_t>(in.ramWords[1]) << 16);
    uint32_t v1 = in.ramWords[2] |
                  (static_cast<uint32_t>(in.ramWords[3]) << 16);
    const uint32_t k0 = 0x15162b7e, k1 = 0xd2a628ae;
    const uint32_t k2 = 0x1588abf7, k3 = 0x4f3c09cf;
    uint32_t sum = 0;
    for (int round = 0; round < 4; round++) {
        sum += 0x9e3779b9;
        v0 += ((v1 << 4) + k0) ^ (v1 + sum) ^ ((v1 >> 5) + k1);
        v1 += ((v0 << 4) + k2) ^ (v0 + sum) ^ ((v0 >> 5) + k3);
    }
    uint32_t got0 = r.out[0] | (static_cast<uint32_t>(r.out[1]) << 16);
    uint32_t got1 = r.out[2] | (static_cast<uint32_t>(r.out[3]) << 16);
    EXPECT_EQ(got0, v0);
    EXPECT_EQ(got1, v1);
}

TEST(WorkloadsFunctional, THoldCountsCrossings)
{
    const Workload &w = workloadByName("tHold");
    Rng rng(17);
    for (int t = 0; t < 10; t++) {
        WorkloadInput in = w.genInput(rng);
        IssRun r = runWorkloadIss(w, in);
        ASSERT_EQ(r.result, StepResult::Halted);
        int above = 0, crossings = 0;
        bool prev = false;
        for (int i = 0; i < 16; i++) {
            bool hi = static_cast<int16_t>(in.ramWords[i]) >=
                      static_cast<int16_t>(in.gpioIn);
            if (hi) {
                above++;
                if (!prev)
                    crossings++;
            }
            prev = hi;
        }
        EXPECT_EQ(r.out[0], above);
        EXPECT_EQ(r.out[1], crossings);
    }
}

} // namespace
} // namespace bespoke
