/**
 * @file
 * Event-driven vs. full-eval simulator equivalence.
 *
 * GateSim keeps two evaluation strategies (see gate_sim.hh); these
 * tests pin down that they are bit-identical observably:
 *
 *  - randomized netlist fuzz: random DAGs (with flop feedback bound
 *    through placeholder BUFs) driven by random 0/1/X inputs, with
 *    force()/clearForces() interleavings, mid-run resets and
 *    sequential-state snapshot/restore, comparing every net value
 *    after every eval and latch plus per-gate toggle counts;
 *  - the real bsp430 core running workloads in lockstep;
 *  - the full activity analysis (X-forking exploration) with each
 *    evaluator, comparing the resulting toggle sets and path counts.
 */

#include <gtest/gtest.h>

#include "src/analysis/activity_analysis.hh"
#include "src/builder/net_builder.hh"
#include "src/cpu/bsp430.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/soc.hh"
#include "src/timing/sta.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

Logic
randomLogic(Rng &rng, int x_chance_pct)
{
    if (static_cast<int>(rng.below(100)) < x_chance_pct)
        return Logic::X;
    return rng.chance(1, 2) ? Logic::One : Logic::Zero;
}

/**
 * Random sequential netlist: input bits, ties, a comb cloud of every
 * cell shape the library offers, and flops whose D inputs are bound
 * AFTER the cloud exists (placeholder-BUF pattern, as bsp430.cc uses)
 * so state feeds back through logic that reads it.
 */
struct RandomDesign
{
    Netlist nl;
    Bus inputs;

    explicit RandomDesign(uint32_t seed)
    {
        Rng rng(seed);
        NetBuilder b(nl);
        inputs = b.inputBus("in", 6);

        std::vector<GateId> pool(inputs);
        pool.push_back(b.tie0());
        pool.push_back(b.tie1());
        auto pick = [&] {
            return pool[rng.below(static_cast<uint32_t>(pool.size()))];
        };

        std::vector<GateId> placeholders;
        size_t gates = 60 + rng.below(80);
        for (size_t g = 0; g < gates; g++) {
            GateId out;
            switch (rng.below(14)) {
            case 0: out = b.inv(pick()); break;
            case 1: out = b.and2(pick(), pick()); break;
            case 2: out = b.or2(pick(), pick()); break;
            case 3: out = b.xor2(pick(), pick()); break;
            case 4: out = b.nand2(pick(), pick()); break;
            case 5: out = b.nor2(pick(), pick()); break;
            case 6: out = b.xnor2(pick(), pick()); break;
            case 7: out = b.mux2(pick(), pick(), pick()); break;
            case 8: out = b.aoi21(pick(), pick(), pick()); break;
            case 9: out = b.oai21(pick(), pick(), pick()); break;
            case 10: out = b.and3(pick(), pick(), pick()); break;
            case 11: out = b.or3(pick(), pick(), pick()); break;
            case 12: {
                // Flop with feedback: D bound after the cloud exists.
                GateId ph = b.buf(b.tie0());
                placeholders.push_back(ph);
                out = rng.chance(1, 2)
                          ? b.dff(ph, rng.chance(1, 2))
                          : b.dffe(ph, pick(), rng.chance(1, 2));
                break;
            }
            default: out = b.buf(pick()); break;
            }
            pool.push_back(out);
        }
        for (GateId ph : placeholders)
            nl.setFanin(ph, 0, pick());
        for (int i = 0; i < 4; i++)
            nl.addOutput("o" + std::to_string(i), pick());
        nl.validate();
    }
};

/** Compare every net of both sims; stop the test early on divergence. */
void
expectSameValues(const GateSim &ev, const GateSim &full,
                 const char *when, uint64_t cycle)
{
    ASSERT_EQ(ev.values(), full.values())
        << "evaluators diverged " << when << " at cycle " << cycle;
}

class EventEquivFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(EventEquivFuzz, RandomNetlistLockstep)
{
    RandomDesign d(GetParam());
    GateSim ev(d.nl, GateSim::EvalMode::EventDriven);
    GateSim full(d.nl, GateSim::EvalMode::FullEval);
    ASSERT_EQ(ev.mode(), GateSim::EvalMode::EventDriven);
    ASSERT_EQ(full.mode(), GateSim::EvalMode::FullEval);
    ToggleCounter tc_ev(d.nl), tc_full(d.nl);

    Rng rng(GetParam() * 7919 + 1);
    ev.reset();
    full.reset();
    SeqState snap_ev, snap_full;
    bool have_snap = false;

    for (uint64_t cycle = 0; cycle < 400; cycle++) {
        // Re-drive a random subset of the inputs (unchanged values
        // must not wake anything; the dirty set stays minimal).
        for (GateId in : d.inputs) {
            if (rng.chance(2, 3))
                continue;
            Logic v = randomLogic(rng, 25);
            ev.setInput(in, v);
            full.setInput(in, v);
        }
        // Interleave forces on arbitrary nets (the analysis forces
        // decision nets mid-cloud, so any net is fair game).
        if (rng.chance(1, 4)) {
            GateId t = rng.below(static_cast<uint32_t>(d.nl.size()));
            Logic v = rng.chance(1, 2) ? Logic::One : Logic::Zero;
            ev.force(t, v);
            full.force(t, v);
        }
        if (rng.chance(1, 8)) {
            ev.clearForces();
            full.clearForces();
        }

        ev.evalComb();
        full.evalComb();
        expectSameValues(ev, full, "after evalComb", cycle);
        ASSERT_EQ(ev.seqState(), full.seqState());

        tc_ev.observe(ev);
        tc_full.observe(full);

        ev.latchSequential();
        full.latchSequential();
        expectSameValues(ev, full, "after latch", cycle);

        // Snapshot / restore (the analysis forks this way constantly).
        if (rng.chance(1, 16)) {
            snap_ev = ev.seqState();
            snap_full = full.seqState();
            ASSERT_EQ(snap_ev, snap_full);
            have_snap = true;
        }
        if (have_snap && rng.chance(1, 16)) {
            ev.restoreSeqState(snap_ev);
            full.restoreSeqState(snap_full);
            ev.evalComb();
            full.evalComb();
            expectSameValues(ev, full, "after restore", cycle);
        }
        if (rng.chance(1, 64)) {
            ev.reset();
            full.reset();
            ev.evalComb();
            full.evalComb();
            expectSameValues(ev, full, "after reset", cycle);
        }
    }

    ASSERT_EQ(tc_ev.cycles(), tc_full.cycles());
    for (GateId i = 0; i < d.nl.size(); i++) {
        ASSERT_EQ(tc_ev.count(i), tc_full.count(i))
            << "toggle count differs on gate " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventEquivFuzz,
                         ::testing::Range(0u, 12u));

TEST(EventEquiv, Bsp430WorkloadLockstep)
{
    Netlist nl = buildBsp430();
    sizeForLoads(nl);

    for (const char *name : {"binSearch", "rle"}) {
        const Workload &w = workloadByName(name);
        AsmProgram prog = w.assembleProgram();
        Soc ev(nl, prog, /*ram_unknown=*/false,
               GateSim::EvalMode::EventDriven);
        Soc full(nl, prog, /*ram_unknown=*/false,
                 GateSim::EvalMode::FullEval);

        Rng in_rng(1234);
        WorkloadInput input = w.genInput(in_rng);
        for (Soc *soc : {&ev, &full}) {
            soc->setGpioIn(SWord::of(input.gpioIn));
            soc->setIrqExt(Logic::Zero);
            for (size_t i = 0; i < input.ramWords.size(); i++) {
                soc->pokeRamWord(
                    static_cast<uint16_t>(kInputBase + 2 * i),
                    SWord::of(input.ramWords[i]));
            }
            for (auto [addr, value] : input.extraRam)
                soc->pokeRamWord(addr, SWord::of(value));
        }

        uint64_t cycles = std::min<uint64_t>(w.maxCycles, 4000);
        for (uint64_t c = 0; c < cycles; c++) {
            ev.evalOnly();
            full.evalOnly();
            ASSERT_EQ(ev.sim().values(), full.sim().values())
                << w.name << " diverged at cycle " << c;
            ev.finishCycle();
            full.finishCycle();
        }
        ASSERT_EQ(ev.envState(), full.envState()) << w.name;
    }
}

TEST(EventEquiv, ActivityAnalysisAgrees)
{
    Netlist nl = buildBsp430();
    sizeForLoads(nl);
    const Workload &w = workloadByName("binSearch");

    AnalysisOptions ev_opts;
    ev_opts.simMode = GateSim::EvalMode::EventDriven;
    AnalysisOptions full_opts = ev_opts;
    full_opts.simMode = GateSim::EvalMode::FullEval;

    AnalysisResult a = analyzeActivity(nl, w, ev_opts);
    AnalysisResult b = analyzeActivity(nl, w, full_opts);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.pathsExplored, b.pathsExplored);
    EXPECT_EQ(a.cyclesSimulated, b.cyclesSimulated);
    EXPECT_EQ(a.forks, b.forks);
    for (GateId i = 0; i < nl.size(); i++) {
        ASSERT_EQ(a.activity->toggled(i), b.activity->toggled(i))
            << "toggle set differs on gate " << i;
        if (!a.activity->toggled(i)) {
            ASSERT_EQ(a.activity->initialValue(i),
                      b.activity->initialValue(i));
        }
    }
}

TEST(EventEquiv, DefaultModeReadsEnvironment)
{
    Netlist nl;
    NetBuilder b(nl);
    Bus in = b.inputBus("in", 2);
    nl.addOutput("o", b.and2(in[0], in[1]));
    nl.validate();

    ASSERT_EQ(::setenv("BESPOKE_FULL_EVAL", "1", 1), 0);
    EXPECT_EQ(GateSim::defaultMode(), GateSim::EvalMode::FullEval);
    EXPECT_EQ(GateSim(nl).mode(), GateSim::EvalMode::FullEval);
    ASSERT_EQ(::unsetenv("BESPOKE_FULL_EVAL"), 0);
    EXPECT_EQ(GateSim::defaultMode(), GateSim::EvalMode::EventDriven);
    EXPECT_EQ(GateSim(nl).mode(), GateSim::EvalMode::EventDriven);
}

} // namespace
} // namespace bespoke
