/**
 * @file
 * SAT never-toggle prover against the measured world: every gate the
 * prover promotes to "never toggles" must be consistent with a
 * concrete replay of the committed workloads (a proven-constant net
 * may never hold the known opposite value in any replay cycle of the
 * checked envelope — a disagreement is an encoder or solver bug and
 * fails with a gate/cycle witness). Also pins that the pass recovers
 * 3-valued widening pessimism (the reason it exists), that it promotes
 * proven gates into the cut, and that verdicts are bit-identical
 * across repeated runs and replay plane widths.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/never_toggle.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/soc.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/rng.hh"
#include "src/verify/runner.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{
namespace
{

constexpr uint64_t kSeed = 0x1234;
constexpr int kInputs = 3;

/**
 * The reduced-precision analysis configuration the recovery tests use:
 * immediate widening at merge points maximizes the 3-valued pessimism
 * the SAT pass exists to claw back. (At the default precision the
 * X-analysis of the small apps is exact and the correct recovery is
 * zero — see DESIGN.md section 13.)
 */
AnalysisResult
wideningAnalysis(const Netlist &nl, const Workload &app)
{
    AnalysisOptions aopts;
    aopts.concreteVisits = 1;
    return analyzeActivity(nl, app, aopts);
}

/** Lane-batched toggle counts of `app` on `nl` (the flow's measure). */
void
measureToggles(const Netlist &nl, const Workload &app,
               const AsmProgram &prog, int plane_bits,
               ToggleCounter *tc)
{
    std::shared_ptr<const SocContext> ctx = SocContext::make(nl);
    GateBatchObservers obs;
    obs.toggles = tc;
    Rng rng(kSeed);
    std::vector<WorkloadInput> in;
    for (int i = 0; i < kInputs; i++)
        in.push_back(app.genInput(rng));
    runWorkloadGateBatch(nl, app, prog, in, plane_bits, obs, ctx);
}

/**
 * Candidate selection exactly as the pass does it: zero-toggle
 * non-pseudo gates, polarity from duty (both polarities where the
 * always-1/always-X cases are indistinguishable).
 */
std::vector<sat::NeverToggleCandidate>
selectCandidates(const Netlist &nl, const Workload &app,
                 const AsmProgram &prog, int plane_bits)
{
    ToggleCounter tc(nl);
    measureToggles(nl, app, prog, plane_bits, &tc);
    std::vector<GateId> ids;
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
            g.type == CellType::TIE1) {
            continue;
        }
        if (tc.count(i) == 0)
            ids.push_back(i);
    }
    std::vector<uint64_t> high(ids.size(), 0);
    uint64_t cycles = 0;
    Rng rng(kSeed);
    auto per_cycle = [&](const GateSim &sim) {
        cycles++;
        for (size_t k = 0; k < ids.size(); k++)
            if (sim.value(ids[k]) != Logic::Zero)
                high[k]++;
    };
    for (int i = 0; i < kInputs; i++) {
        WorkloadInput in = app.genInput(rng);
        runWorkloadGate(nl, app, prog, in, nullptr, nullptr, per_cycle);
    }
    std::vector<sat::NeverToggleCandidate> cands;
    for (size_t k = 0; k < ids.size(); k++) {
        if (high[k] == 0) {
            cands.push_back({ids[k], false});
        } else if (high[k] == cycles) {
            cands.push_back({ids[k], true});
            cands.push_back({ids[k], false});
        }
    }
    return cands;
}

/**
 * The central soundness property: a SAT proof quantifies over EVERY
 * input sequence in the envelope, so no concrete replay may ever catch
 * a proven net at the known opposite of its proven constant inside the
 * proved horizon. (An X in the replay is fine — that is exactly the
 * pessimism the prover resolves; only a *known* contradiction is a
 * bug.) Recovery must be nonzero here: this configuration widens
 * aggressively, and SAT claws the widened constants back.
 */
TEST(SatNeverToggle, ProvenGatesNeverContradictReplay)
{
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();
    AnalysisResult ar = wideningAnalysis(core, app);
    ASSERT_TRUE(ar.completed);
    EXPECT_GT(ar.merges, 0u) << "config must induce widening";

    PassPipelineOptions popts;
    PassEnv env;
    Netlist nl = runTailorPipeline(core, ar.activity.get(), popts, env);

    std::vector<sat::NeverToggleCandidate> cands =
        selectCandidates(nl, app, prog, 64);
    ASSERT_FALSE(cands.empty());

    const int kDepth = 60;
    sat::NeverToggleOptions no;
    no.depth = kDepth;
    sat::NeverToggleResult res =
        sat::proveNeverToggling(nl, prog, cands, no);
    EXPECT_GT(res.proven.size(), 0u)
        << "widening pessimism must be recoverable by SAT";
    EXPECT_EQ(res.proven.size() + res.refuted.size() +
                  res.unknown.size(),
              cands.size());

    // Concrete replay of every committed input, first kDepth cycles.
    Rng rng(kSeed);
    for (int i = 0; i < kInputs; i++) {
        WorkloadInput in = app.genInput(rng);
        int cycle = 0;
        auto per_cycle = [&](const GateSim &sim) {
            if (cycle++ >= kDepth)
                return;
            for (const sat::NeverToggleCandidate &c : res.proven) {
                Logic v = sim.value(c.gate);
                if (!isKnown(v))
                    continue;
                ASSERT_EQ(v == Logic::One, c.value)
                    << "witness: input " << i << " cycle "
                    << (cycle - 1) << " gate " << c.gate << " ("
                    << cellName(nl.gate(c.gate).type,
                                nl.gate(c.gate).drive)
                    << ") proven constant " << c.value
                    << " but replay observed the opposite";
            }
        };
        runWorkloadGate(nl, app, prog, in, nullptr, nullptr,
                        per_cycle);
    }
}

/**
 * The pipeline pass promotes proven candidates into the cut: the
 * SAT-enabled design must be strictly smaller, with report counters
 * that add up.
 */
TEST(SatNeverToggle, PassPromotesProvenGatesIntoCut)
{
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();
    AnalysisResult ar = wideningAnalysis(core, app);

    PassEnv env;
    env.program = &prog;
    env.measureActivity = [&](const Netlist &nl, ToggleCounter *tc) {
        measureToggles(nl, app, prog, 64, tc);
    };
    env.measureDuty = [&](const Netlist &nl,
                          const std::vector<GateId> &ids,
                          std::vector<uint64_t> *high,
                          uint64_t *cycles) {
        high->assign(ids.size(), 0);
        *cycles = 0;
        Rng rng(kSeed);
        auto per_cycle = [&](const GateSim &sim) {
            (*cycles)++;
            for (size_t k = 0; k < ids.size(); k++)
                if (sim.value(ids[k]) != Logic::Zero)
                    (*high)[k]++;
        };
        for (int i = 0; i < kInputs; i++) {
            WorkloadInput in = app.genInput(rng);
            runWorkloadGate(nl, app, prog, in, nullptr, nullptr,
                            per_cycle);
        }
    };

    PassPipelineOptions base;
    CutStats base_cut;
    Netlist base_nl = runTailorPipeline(core, ar.activity.get(), base,
                                        env, &base_cut);

    PassPipelineOptions with_sat = base;
    with_sat.satNeverToggle = true;
    with_sat.sat.depth = 60;
    CutStats sat_cut;
    PipelineReport report;
    Netlist sat_nl = runTailorPipeline(core, ar.activity.get(),
                                       with_sat, env, &sat_cut,
                                       &report);

    EXPECT_GT(report.satCandidates, 0u);
    EXPECT_GT(report.satProven, 0u);
    EXPECT_EQ(report.satProven + report.satRefuted + report.satUnknown,
              report.satCandidates);
    EXPECT_LT(sat_nl.numCells(), base_nl.numCells())
        << "proven gates must shrink the design";
}

/**
 * Determinism contract: verdicts and stats are bit-identical between
 * repeated runs, and candidate selection is independent of the replay
 * plane width (execution strategy only — same acceptance rule as
 * --lanes/--threads everywhere else in the repo).
 */
TEST(SatNeverToggle, VerdictsDeterministicAndPlaneWidthIndependent)
{
    const Workload &app = workloadByName("mult");
    AsmProgram prog = app.assembleProgram();
    Netlist core = buildBsp430();
    AnalysisResult ar = wideningAnalysis(core, app);
    PassPipelineOptions popts;
    PassEnv env;
    Netlist nl = runTailorPipeline(core, ar.activity.get(), popts, env);

    std::vector<sat::NeverToggleCandidate> c64 =
        selectCandidates(nl, app, prog, 64);
    std::vector<sat::NeverToggleCandidate> c256 =
        selectCandidates(nl, app, prog, 256);
    ASSERT_EQ(c64.size(), c256.size());
    for (size_t i = 0; i < c64.size(); i++) {
        EXPECT_EQ(c64[i].gate, c256[i].gate);
        EXPECT_EQ(c64[i].value, c256[i].value);
    }

    sat::NeverToggleOptions no;
    no.depth = 24;
    sat::NeverToggleResult a = sat::proveNeverToggling(nl, prog, c64, no);
    sat::NeverToggleResult b =
        sat::proveNeverToggling(nl, prog, c256, no);
    ASSERT_EQ(a.proven.size(), b.proven.size());
    for (size_t i = 0; i < a.proven.size(); i++) {
        EXPECT_EQ(a.proven[i].gate, b.proven[i].gate);
        EXPECT_EQ(a.proven[i].value, b.proven[i].value);
    }
    EXPECT_EQ(a.refuted, b.refuted);
    EXPECT_EQ(a.unknown, b.unknown);
    EXPECT_EQ(a.stats.queries, b.stats.queries);
    EXPECT_EQ(a.stats.baseConflicts, b.stats.baseConflicts);
}

} // namespace
} // namespace bespoke
