/**
 * @file
 * Differential-testing harness: width-generic scalar-vs-lane lockstep.
 *
 * Every lane-parallel execution path in the repo (verification batch
 * runner, activity-analysis lane workers, mutant sweeps, power replay)
 * rests on one claim: lane i of a LaneSimT<W> is bit-identical to a
 * scalar GateSim run of the same scenario, at every width, under every
 * interleaving of input updates, per-lane forces, sequential restores
 * and resets. This header packages that claim as a reusable fixture:
 *
 *  - randomNetlist(seed): a random sequential DAG covering every cell
 *    shape the library offers, with flop feedback;
 *  - runLockstepCase<W>(seed, cycles): drives a LaneSimT<W> and W
 *    scalar GateSims through `cycles` of randomized stimulus and
 *    compares the FULL machine state — every net of every lane, as raw
 *    planes (which also pins the canonical val-subset-of-known form) —
 *    after every eval, latch, restore and reset, plus the accumulated
 *    activity-tracker toggle sets at the end;
 *  - runLockstepCaseAt(bits, ...): runtime-width dispatch, so the CI
 *    matrix can point one sanitizer shard at each plane width via
 *    BESPOKE_PLANE_BITS (tests/test_diff_harness.cc).
 *
 * Use ASSERT_NO_FATAL_FAILURE around the case runners: they abort the
 * case on the first diverging net.
 */

#ifndef BESPOKE_TESTS_DIFF_HARNESS_HH
#define BESPOKE_TESTS_DIFF_HARNESS_HH

#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "src/builder/net_builder.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/lane_sim.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace difftest
{

inline Logic
randomLogic(Rng &rng, int x_chance_pct)
{
    if (static_cast<int>(rng.below(100)) < x_chance_pct)
        return Logic::X;
    return rng.chance(1, 2) ? Logic::One : Logic::Zero;
}

/** Uniformly random lane mask of either width flavor. */
template <class M>
inline M
randomMask(Rng &rng)
{
    auto word = [&rng] {
        return (static_cast<uint64_t>(rng.next()) << 32) | rng.next();
    };
    if constexpr (std::is_same_v<M, uint64_t>) {
        return word();
    } else {
        M m{};
        for (auto &w : m.w)
            w = word();
        return m;
    }
}

template <class M>
inline std::string
maskToHex(const M &m)
{
    auto hex = [](uint64_t w) {
        char buf[19];
        snprintf(buf, sizeof buf, "%016llx",
                 static_cast<unsigned long long>(w));
        return std::string(buf);
    };
    if constexpr (std::is_same_v<M, uint64_t>) {
        return hex(m);
    } else {
        std::string s;
        for (int i = static_cast<int>(m.w.size()) - 1; i >= 0; i--)
            s += hex(m.w[i]) + (i ? ":" : "");
        return s;
    }
}

/**
 * Random sequential netlist covering every cell shape, with flop
 * feedback bound through placeholder BUFs (the recipe shared with
 * tests/test_sim_event_equiv.cc / test_lane_sim.cc, sized down so a
 * few hundred cases stay cheap).
 */
struct RandomDesign
{
    Netlist nl;
    Bus inputs;

    explicit RandomDesign(uint32_t seed, uint32_t min_gates = 30,
                          uint32_t gate_spread = 50)
    {
        Rng rng(seed);
        NetBuilder b(nl);
        inputs = b.inputBus("in", 6);

        std::vector<GateId> pool(inputs);
        pool.push_back(b.tie0());
        pool.push_back(b.tie1());
        auto pick = [&] {
            return pool[rng.below(static_cast<uint32_t>(pool.size()))];
        };

        std::vector<GateId> placeholders;
        size_t gates = min_gates + rng.below(gate_spread);
        for (size_t g = 0; g < gates; g++) {
            GateId out;
            switch (rng.below(14)) {
            case 0: out = b.inv(pick()); break;
            case 1: out = b.and2(pick(), pick()); break;
            case 2: out = b.or2(pick(), pick()); break;
            case 3: out = b.xor2(pick(), pick()); break;
            case 4: out = b.nand2(pick(), pick()); break;
            case 5: out = b.nor2(pick(), pick()); break;
            case 6: out = b.xnor2(pick(), pick()); break;
            case 7: out = b.mux2(pick(), pick(), pick()); break;
            case 8: out = b.aoi21(pick(), pick(), pick()); break;
            case 9: out = b.oai21(pick(), pick(), pick()); break;
            case 10: out = b.and3(pick(), pick(), pick()); break;
            case 11: out = b.or3(pick(), pick(), pick()); break;
            case 12: {
                GateId ph = b.buf(b.tie0());
                placeholders.push_back(ph);
                out = rng.chance(1, 2)
                          ? b.dff(ph, rng.chance(1, 2))
                          : b.dffe(ph, pick(), rng.chance(1, 2));
                break;
            }
            default: out = b.buf(pick()); break;
            }
            pool.push_back(out);
        }
        for (GateId ph : placeholders)
            nl.setFanin(ph, 0, pick());
        for (int i = 0; i < 4; i++)
            nl.addOutput("o" + std::to_string(i), pick());
        nl.validate();
    }
};

/**
 * Compare every net of every lane against the matching scalar sims, as
 * raw planes (also pinning canonical form: an X lane has val bit 0).
 */
template <int W>
inline void
expectLanesMatch(const LaneSimT<W> &ls, const std::vector<GateSim> &ref,
                 const char *when, uint64_t cycle)
{
    using Mask = LaneMask<W>;
    for (GateId id = 0; id < ls.netlist().size(); id++) {
        Mask v{}, k{};
        for (int lane = 0; lane < W; lane++) {
            Logic e = ref[lane].value(id);
            if (e == Logic::X)
                continue;
            laneSet(k, lane);
            if (e == Logic::One)
                laneSet(v, lane);
        }
        ASSERT_EQ(ls.valPlane(id), v)
            << "W=" << W << " val plane diverged on gate " << id << " "
            << when << " at cycle " << cycle << "\n  lane:   "
            << maskToHex(ls.valPlane(id)) << "\n  scalar: "
            << maskToHex(v);
        ASSERT_EQ(ls.knownPlane(id), k)
            << "W=" << W << " known plane diverged on gate " << id
            << " " << when << " at cycle " << cycle << "\n  lane:   "
            << maskToHex(ls.knownPlane(id)) << "\n  scalar: "
            << maskToHex(k);
    }
}

/**
 * One randomized lockstep case: W distinct scenarios on one random
 * netlist, full-state compared against W scalar oracles every step.
 */
template <int W>
inline void
runLockstepCase(uint32_t seed, uint64_t cycles)
{
    using Mask = LaneMask<W>;

    RandomDesign d(seed);
    LaneSimT<W> ls(d.nl);
    std::vector<GateSim> ref;
    ref.reserve(W);
    for (int lane = 0; lane < W; lane++)
        ref.emplace_back(d.nl, GateSim::EvalMode::EventDriven,
                         ls.prep());

    Rng rng(seed * 2654435761u + W);
    ls.reset();
    for (GateSim &r : ref)
        r.reset();
    ASSERT_NO_FATAL_FAILURE(expectLanesMatch(ls, ref, "after reset", 0));

    ls.evalComb();
    for (GateSim &r : ref)
        r.evalComb();
    ActivityTracker at_lane(d.nl), at_ref(d.nl);
    at_lane.captureInitial(ref[0]);
    at_ref.captureInitial(ref[0]);

    std::vector<SeqState> snap(W);
    bool have_snap = false;

    for (uint64_t cycle = 0; cycle < cycles; cycle++) {
        // Distinct per-lane input sequences, driving only a random
        // subset each cycle.
        for (GateId in : d.inputs) {
            for (int lane = 0; lane < W; lane++) {
                if (rng.chance(2, 3))
                    continue;
                Logic v = randomLogic(rng, 25);
                ls.setInput(in, lane, v);
                ref[lane].setInput(in, v);
            }
        }
        // Per-lane-mask forces on arbitrary nets, and partial-lane
        // releases — the execution-tree fork/retire shapes.
        if (rng.chance(1, 3)) {
            GateId t = rng.below(static_cast<uint32_t>(d.nl.size()));
            Mask lanes = randomMask<Mask>(rng);
            Mask value = randomMask<Mask>(rng) & lanes;
            ls.force(t, lanes, value);
            forEachLane(lanes, [&](int lane) {
                ref[lane].force(t, laneTest(value, lane) ? Logic::One
                                                         : Logic::Zero);
            });
        }
        if (rng.chance(1, 6)) {
            Mask lanes = randomMask<Mask>(rng);
            ls.clearForces(lanes);
            forEachLane(lanes,
                        [&](int lane) { ref[lane].clearForces(); });
        }

        ls.evalComb();
        for (GateSim &r : ref)
            r.evalComb();
        ASSERT_NO_FATAL_FAILURE(
            expectLanesMatch(ls, ref, "after evalComb", cycle));

        at_lane.observe(ls, laneOnes<Mask>());
        for (const GateSim &r : ref)
            at_ref.observe(r);

        ls.latchSequential();
        for (GateSim &r : ref)
            r.latchSequential();
        ASSERT_NO_FATAL_FAILURE(
            expectLanesMatch(ls, ref, "after latch", cycle));

        // Per-lane sequential snapshot / restore (how the batch
        // runners refill retired lanes).
        if (rng.chance(1, 12)) {
            for (int lane = 0; lane < W; lane++)
                snap[lane] = ref[lane].seqState();
            have_snap = true;
        }
        if (have_snap && rng.chance(1, 12)) {
            Mask lanes = randomMask<Mask>(rng);
            forEachLane(lanes, [&](int lane) {
                ls.restoreSeqLane(lane, snap[lane]);
                ref[lane].restoreSeqState(snap[lane]);
            });
            ls.evalComb();
            for (GateSim &r : ref)
                r.evalComb();
            ASSERT_NO_FATAL_FAILURE(
                expectLanesMatch(ls, ref, "after restore", cycle));
        }
        if (rng.chance(1, 48)) {
            ls.reset();
            for (GateSim &r : ref)
                r.reset();
            ls.evalComb();
            for (GateSim &r : ref)
                r.evalComb();
            ASSERT_NO_FATAL_FAILURE(
                expectLanesMatch(ls, ref, "after reset eval", cycle));
        }
    }

    for (GateId i = 0; i < d.nl.size(); i++) {
        ASSERT_EQ(at_lane.toggled(i), at_ref.toggled(i))
            << "W=" << W << " toggle set differs on gate " << i;
    }
}

/** Runtime-width dispatch (BESPOKE_PLANE_BITS-driven CI shards). */
inline void
runLockstepCaseAt(int bits, uint32_t seed, uint64_t cycles)
{
    withPlaneBits(bits, [&](auto wc) {
        runLockstepCase<decltype(wc)::value>(seed, cycles);
    });
}

} // namespace difftest
} // namespace bespoke

#endif // BESPOKE_TESTS_DIFF_HARNESS_HH
