/**
 * @file
 * Differential-testing suite over the diff_harness.hh lockstep
 * fixture: 200 randomized netlist cases, each driving a LaneSimT
 * against per-lane scalar GateSim oracles with full-machine-state
 * comparison every cycle (see the header for the stimulus mix).
 *
 * Width selection mirrors the CI matrix: every case runs at the
 * 64-lane plane; the BESPOKE_PLANE_BITS environment variable (resolved
 * through resolvePlaneBits, like the tools) additionally points every
 * eighth case at the configured wide plane — the sanitizer shards run
 * one suite at 64 and one at 256 bits. A smoke test keeps 128/256/512
 * covered even when no width is configured.
 */

#include <gtest/gtest.h>

#include "src/verify/runner.hh"
#include "tests/diff_harness.hh"

namespace bespoke
{
namespace
{

using difftest::runLockstepCase;
using difftest::runLockstepCaseAt;

class DiffHarness : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DiffHarness, RandomNetlistLockstep)
{
    const uint32_t seed = GetParam();
    ASSERT_NO_FATAL_FAILURE(runLockstepCase<64>(seed, 24));

    // Every eighth case additionally runs at the environment-selected
    // wide plane, scaled down: the oracle cost is one scalar sim per
    // lane, so wide planes buy coverage with fewer cycles.
    const int env_bits = resolvePlaneBits(0);
    if (env_bits != 64 && seed % 8 == 0) {
        ASSERT_NO_FATAL_FAILURE(
            runLockstepCaseAt(env_bits, seed ^ 0x9e3779b9u, 8));
    }
}

// 200 randomized cases (the diff-harness floor pinned by the CI
// shards; each registers as its own ctest entry).
INSTANTIATE_TEST_SUITE_P(Seeds, DiffHarness, ::testing::Range(0u, 200u));

// Every instantiated width stays lockstep-covered in a default ctest
// run, independent of BESPOKE_PLANE_BITS.
TEST(DiffHarnessWide, Plane128Lockstep)
{
    ASSERT_NO_FATAL_FAILURE(runLockstepCase<128>(1001, 12));
}

TEST(DiffHarnessWide, Plane256Lockstep)
{
    ASSERT_NO_FATAL_FAILURE(runLockstepCase<256>(1002, 8));
}

TEST(DiffHarnessWide, Plane512Lockstep)
{
    ASSERT_NO_FATAL_FAILURE(runLockstepCase<512>(1003, 6));
}

} // namespace
} // namespace bespoke
