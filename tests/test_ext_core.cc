/**
 * @file
 * Extended-core (timer + UART) tests: peripheral hardware behavior
 * (including decoding the actual UART bit stream off the tx pin),
 * golden-model consistency where applicable, and the bespoke flow on
 * the richer core — unused peripherals must be provably strippable.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/netlist/verilog_export.hh"
#include "src/sim/vcd_writer.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/verify/runner.hh"

namespace bespoke
{
namespace
{

const Netlist &
extCore()
{
    static Netlist nl = buildBsp430(nullptr, CpuConfig::extended());
    return nl;
}

TEST(ExtCore, HasTimerAndUartModules)
{
    EXPECT_GT(extCore().moduleStats(Module::Timer).numCells, 100u);
    EXPECT_GT(extCore().moduleStats(Module::Uart).numCells, 80u);
    EXPECT_TRUE(extCore().hasPort("uart_tx"));
    // The default core has neither.
    Netlist base = buildBsp430();
    EXPECT_EQ(base.moduleStats(Module::Timer).numCells, 0u);
    EXPECT_FALSE(base.hasPort("uart_tx"));
    EXPECT_GT(extCore().numCells(), base.numCells());
}

TEST(ExtCore, UartTransmitsCorrectBitstream)
{
    const Workload &w = workloadByName("uartTx");
    AsmProgram prog = w.assembleProgram();
    Rng rng(21);
    WorkloadInput in = w.genInput(rng);

    // Sample the tx pin every cycle and decode 8N1 frames at the
    // divide-by-8 baud rate.
    GateId tx_port = extCore().port("uart_tx");
    std::vector<int> samples;
    auto per_cycle = [&](const GateSim &sim) {
        Logic v = sim.value(tx_port);
        samples.push_back(v == Logic::One ? 1
                          : v == Logic::Zero ? 0 : -1);
    };
    GateRun run = runWorkloadGate(extCore(), w, prog, in, nullptr,
                                  nullptr, per_cycle);
    ASSERT_TRUE(run.halted);

    std::vector<uint8_t> decoded;
    size_t i = 0;
    while (i < samples.size()) {
        if (samples[i] != 0) {
            i++;
            continue;
        }
        // Start bit found; sample each bit mid-cell (4 of 8).
        size_t frame = i;
        uint8_t byte = 0;
        bool ok = true;
        for (int bit = 0; bit < 8 && ok; bit++) {
            size_t at = frame + 8 * (bit + 1) + 4;
            ASSERT_LT(at, samples.size());
            if (samples[at] < 0)
                ok = false;
            else
                byte |= static_cast<uint8_t>(samples[at] << bit);
        }
        size_t stop_at = frame + 8 * 9 + 4;
        ASSERT_LT(stop_at, samples.size());
        EXPECT_EQ(samples[stop_at], 1) << "missing stop bit";
        ASSERT_TRUE(ok);
        decoded.push_back(byte);
        i = frame + 8 * 10;
    }

    ASSERT_EQ(decoded.size(), 6u);
    for (int k = 0; k < 6; k++)
        EXPECT_EQ(decoded[k], in.ramWords[k] & 0xff) << "byte " << k;

    // Architectural result also matches the golden model.
    IssRun ir = runWorkloadIss(w, in);
    RunDiff diff = compareRuns(ir, run, w);
    EXPECT_TRUE(diff.ok) << diff.detail;
}

TEST(ExtCore, TimerFiresPeriodically)
{
    const Workload &w = workloadByName("timerTick");
    AsmProgram prog = w.assembleProgram();
    Rng rng(5);
    WorkloadInput in = w.genInput(rng);
    GateRun run = runWorkloadGate(extCore(), w, prog, in);
    ASSERT_TRUE(run.halted);
    ASSERT_TRUE(run.out[0].fullyKnown());
    EXPECT_EQ(run.out[0].val, 3u);  // three compare events observed
    ASSERT_TRUE(run.out[1].fullyKnown());
    EXPECT_EQ(run.out[1].val, (in.ramWords[0] & 0x3f) + 20);
}

TEST(ExtCore, StandardWorkloadsRunUnchanged)
{
    // The paper's benchmarks are oblivious to the extra peripherals.
    for (const char *name : {"div", "tHold"}) {
        const Workload &w = workloadByName(name);
        AsmProgram prog = w.assembleProgram();
        Rng rng(31);
        WorkloadInput in = w.genInput(rng);
        IssRun ir = runWorkloadIss(w, in);
        GateRun gr = runWorkloadGate(extCore(), w, prog, in);
        RunDiff diff = compareRuns(ir, gr, w);
        EXPECT_TRUE(diff.ok) << name << ": " << diff.detail;
    }
}

TEST(ExtCore, BespokeStripsUnusedPeripherals)
{
    // An app that uses neither timer nor UART: both modules must be
    // provably untoggleable and cut away entirely.
    const Workload &w = workloadByName("div");
    AnalysisResult r = analyzeActivity(extCore(), w);
    ASSERT_TRUE(r.completed);
    // All peripheral *state* must be provably frozen. (Combinational
    // address-decode gates inside the modules legitimately toggle with
    // the bus; they die in re-synthesis once their strobes fold to 0.)
    for (GateId i = 0; i < extCore().size(); i++) {
        const Gate &g = extCore().gate(i);
        if (!cellSequential(g.type))
            continue;
        if (g.module == Module::Timer || g.module == Module::Uart) {
            EXPECT_FALSE(r.activity->toggled(i))
                << moduleName(g.module) << " flop " << i;
        }
    }
    Netlist cut = cutAndStitch(extCore(), *r.activity);
    // Nothing left but (at most) the tie cell driving the preserved
    // uart_tx output port at its proven-constant idle value.
    for (GateId i = 0; i < cut.size(); i++) {
        const Gate &g = cut.gate(i);
        if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
            g.type == CellType::TIE1) {
            continue;
        }
        EXPECT_NE(g.module, Module::Timer) << "gate " << i;
        EXPECT_NE(g.module, Module::Uart) << "gate " << i;
    }

    // And the uartTx app keeps the UART but not the timer.
    AnalysisResult ru =
        analyzeActivity(extCore(), workloadByName("uartTx"));
    ASSERT_TRUE(ru.completed);
    Netlist cut_u = cutAndStitch(extCore(), *ru.activity);
    EXPECT_GT(cut_u.moduleStats(Module::Uart).numCells, 50u);
    EXPECT_EQ(cut_u.moduleStats(Module::Timer).numCells, 0u);
}

TEST(VerilogExport, StructureAndPorts)
{
    const Workload &w = workloadByName("div");
    Netlist base = buildBsp430();
    AnalysisResult r = analyzeActivity(base, w);
    // Export the baseline-derived bespoke design.
    Netlist design = cutAndStitch(base, *r.activity);
    std::ostringstream os;
    exportVerilog(design, "bespoke_div", os);
    std::string v = os.str();
    EXPECT_NE(v.find("module bespoke_div ("), std::string::npos);
    EXPECT_NE(v.find("input wire clk"), std::string::npos);
    EXPECT_NE(v.find("[15:0] mem_rdata"), std::string::npos);
    EXPECT_NE(v.find("output wire [15:0] mem_addr"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    // Every real cell appears as an instance.
    size_t instances = 0;
    for (size_t pos = v.find(" u"); pos != std::string::npos;
         pos = v.find(" u", pos + 1)) {
        if (std::isdigit(static_cast<unsigned char>(v[pos + 2])))
            instances++;
    }
    EXPECT_EQ(instances, design.numCells());

    std::ostringstream lib;
    writeCellLibrary(lib);
    std::string l = lib.str();
    EXPECT_NE(l.find("module NAND2_X1"), std::string::npos);
    EXPECT_NE(l.find("module DFFE_X4"), std::string::npos);
    EXPECT_NE(l.find("module TIE1"), std::string::npos);
}

TEST(VcdWriter, EmitsHeaderAndChanges)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId a = nl.addInput("a");
    Bus bus = b.inputBus("data", 4);
    GateId q = b.dff(b.inv(a));
    nl.addOutput("q", q);
    b.outputBus("dout", bus);

    GateSim sim(nl);
    sim.reset();
    std::ostringstream os;
    VcdWriter vcd(nl, os);
    vcd.watch(q, "internal_q");

    for (int c = 0; c < 4; c++) {
        sim.setInput(a, logicOf(c % 2));
        sim.setInputWord(bus, SWord::of(static_cast<uint16_t>(c)));
        sim.evalComb();
        vcd.sample(sim);
        sim.latchSequential();
    }
    std::string v = os.str();
    EXPECT_NE(v.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(v.find("$var wire 4"), std::string::npos);
    EXPECT_NE(v.find("internal_q"), std::string::npos);
    EXPECT_NE(v.find("#0"), std::string::npos);
    EXPECT_NE(v.find("#3"), std::string::npos);
    EXPECT_NE(v.find("b0010 "), std::string::npos);  // data == 2
}

} // namespace
} // namespace bespoke
