/**
 * @file
 * Pass pipeline: the default configuration must reproduce the original
 * monolithic cutAndStitch()/resynthesize() flow bit-identically (the
 * legacy loops are replicated verbatim here and compared by content
 * hash); pass-list parsing and option hashing; the cost-driven rewrite
 * search choosing different adder microarchitectures for hot and cold
 * datapaths; clock-gating planning; and the DatapathInstance side-table
 * surviving the canonical JSON roundtrip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/builder/net_builder.hh"
#include "src/gating/clock_gating.hh"
#include "src/io/netlist_json.hh"
#include "src/sim/gate_sim.hh"
#include "src/timing/sta.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/logging.hh"
#include "src/util/rng.hh"

namespace bespoke
{
namespace
{

/** Random netlist with inputs, combinational soup, flops, outputs. */
Netlist
randomNetlist(Rng &rng, int num_inputs, int num_gates, int num_flops,
              bool with_ties)
{
    Netlist nl;
    NetBuilder b(nl);
    std::vector<GateId> pool;
    for (int i = 0; i < num_inputs; i++)
        pool.push_back(nl.addInput("in[" + std::to_string(i) + "]"));
    if (with_ties) {
        pool.push_back(b.tie0());
        pool.push_back(b.tie1());
    }
    std::vector<GateId> flop_d;
    for (int i = 0; i < num_flops; i++) {
        GateId ph = b.buf(b.tie0());
        flop_d.push_back(ph);
        pool.push_back(b.dff(ph, rng.chance(1, 2)));
    }
    auto pick = [&]() { return pool[rng.below(
        static_cast<uint32_t>(pool.size()))]; };
    for (int i = 0; i < num_gates; i++) {
        CellType types[] = {CellType::INV,   CellType::AND2,
                            CellType::OR2,   CellType::NAND2,
                            CellType::NOR2,  CellType::XOR2,
                            CellType::XNOR2, CellType::MUX2,
                            CellType::AOI21, CellType::OAI21,
                            CellType::AND3,  CellType::OR3,
                            CellType::BUF};
        CellType t = types[rng.below(13)];
        int n = cellNumInputs(t);
        GateId g = nl.addGate(t, Module::Glue, pick(),
                              n > 1 ? pick() : kNoGate,
                              n > 2 ? pick() : kNoGate);
        pool.push_back(g);
    }
    for (GateId ph : flop_d)
        nl.setFanin(ph, 0, pool[rng.below(
            static_cast<uint32_t>(pool.size()))]);
    for (int i = 0; i < 4; i++)
        nl.addOutput("out[" + std::to_string(i) + "]", pick());
    nl.validate();
    return nl;
}

/**
 * The pre-pipeline resynthesize() loop, replicated verbatim: constant
 * propagation to a local fixpoint, compact, dead sweep, repeat until
 * the cell count stops shrinking. The pipeline's constant-fold pass
 * must reproduce this gate for gate.
 */
Netlist
legacyResynthesize(const Netlist &src)
{
    Netlist current = src;
    while (true) {
        size_t before = current.numCells();
        {
            Rewriter rw(current);
            size_t total = 0;
            while (true) {
                size_t c = constantFoldOnce(rw);
                total += c;
                if (c == 0)
                    break;
            }
            if (total > 0)
                current = rw.compact().netlist;
        }
        current = sweepDead(current).netlist;
        if (current.numCells() >= before)
            break;
    }
    current.validate();
    return current;
}

/** The pre-pipeline cutAndStitch() body, replicated verbatim. */
Netlist
legacyCutAndStitch(const Netlist &src, const ActivityTracker &activity,
                   CutStats *stats)
{
    Rewriter rw(src);
    size_t cut = 0;
    for (GateId i = 0; i < src.size(); i++) {
        const Gate &g = src.gate(i);
        if (cellPseudo(g.type))
            continue;
        if (g.type == CellType::TIE0 || g.type == CellType::TIE1)
            continue;
        if (!activity.toggled(i)) {
            Logic v = activity.initialValue(i);
            bespoke_assert(isKnown(v));
            rw.makeConstant(i, knownValue(v));
            cut++;
        }
    }
    Netlist after_cut = rw.compact().netlist;
    Netlist result = legacyResynthesize(after_cut);
    if (stats) {
        stats->gatesBefore = src.numCells();
        stats->gatesCutDirect = cut;
        stats->gatesAfter = result.numCells();
    }
    return result;
}

/** Simulate `nl` under random known inputs, collecting toggles. */
ActivityTracker
trackRandomStimulus(const Netlist &nl, uint32_t seed, int cycles)
{
    GateSim sim(nl);
    sim.reset();
    std::vector<GateId> ins = nl.inputIds();
    Rng rng(seed);
    for (GateId id : ins)
        sim.setInput(id, logicOf(rng.chance(1, 2)));
    sim.evalComb();
    ActivityTracker tracker(nl);
    tracker.captureInitial(sim);
    for (int c = 0; c < cycles; c++) {
        for (GateId id : ins)
            sim.setInput(id, logicOf(rng.chance(1, 2)));
        sim.evalComb();
        tracker.observe(sim);
        sim.latchSequential();
    }
    return tracker;
}

TEST(PassPipeline, DefaultMatchesLegacyResynthesisBitIdentically)
{
    for (uint32_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
        Rng rng(seed);
        Netlist nl = randomNetlist(rng, 5, 80, 6, /*with_ties=*/true);
        Netlist legacy = legacyResynthesize(nl);
        PassPipelineOptions opts;
        PassEnv env;
        Netlist piped = runTailorPipeline(nl, nullptr, opts, env);
        EXPECT_EQ(piped.contentHash(), legacy.contentHash())
            << "seed " << seed;
    }
}

TEST(PassPipeline, DefaultMatchesLegacyCutAndStitchBitIdentically)
{
    for (uint32_t seed : {21u, 22u, 23u, 24u}) {
        Rng rng(seed);
        Netlist nl = randomNetlist(rng, 6, 90, 5, /*with_ties=*/true);
        ActivityTracker tracker =
            trackRandomStimulus(nl, seed * 31 + 7, 12);

        CutStats lstats;
        Netlist legacy = legacyCutAndStitch(nl, tracker, &lstats);
        CutStats pstats;
        PassPipelineOptions opts;
        PassEnv env;
        Netlist piped =
            runTailorPipeline(nl, &tracker, opts, env, &pstats);

        EXPECT_EQ(piped.contentHash(), legacy.contentHash())
            << "seed " << seed;
        EXPECT_EQ(pstats.gatesBefore, lstats.gatesBefore);
        EXPECT_EQ(pstats.gatesCutDirect, lstats.gatesCutDirect);
        EXPECT_EQ(pstats.gatesAfter, lstats.gatesAfter);
    }
}

TEST(PassPipeline, ReportCarriesPerPassStats)
{
    Rng rng(33);
    Netlist nl = randomNetlist(rng, 5, 60, 4, /*with_ties=*/true);
    ActivityTracker tracker = trackRandomStimulus(nl, 77, 10);

    PassPipelineOptions opts;
    opts.collectMetrics = true;
    PassEnv env;
    CutStats stats;
    PipelineReport report;
    runTailorPipeline(nl, &tracker, opts, env, &stats, &report);

    ASSERT_FALSE(report.passes.empty());
    bool saw_fold = false;
    for (const PassStats &p : report.passes) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_LE(p.gatesAfter, p.gatesBefore);
        if (p.name == "constant-fold")
            saw_fold = true;
        // collectMetrics measures depth; power needs an activity
        // provider, which this env does not supply.
        EXPECT_GE(p.depthBeforePs, 0.0);
        EXPECT_GE(p.depthAfterPs, 0.0);
        EXPECT_EQ(p.powerBeforeUW, -1.0);
        EXPECT_EQ(p.powerAfterUW, -1.0);
    }
    EXPECT_TRUE(saw_fold);
}

TEST(PassPipeline, ParsePassList)
{
    std::string err;
    PassPipelineOptions o;

    ASSERT_TRUE(parsePassList("", &o, &err));
    EXPECT_TRUE(o.constantFold);
    EXPECT_FALSE(o.rewriteSearch);
    EXPECT_FALSE(o.clockGating);

    ASSERT_TRUE(parsePassList("default", &o, &err));
    EXPECT_TRUE(o.constantFold);
    EXPECT_FALSE(o.rewriteSearch);
    EXPECT_FALSE(o.clockGating);

    ASSERT_TRUE(parsePassList("none", &o, &err));
    EXPECT_FALSE(o.constantFold);
    EXPECT_FALSE(o.rewriteSearch);
    EXPECT_FALSE(o.clockGating);

    ASSERT_TRUE(parsePassList("all", &o, &err));
    EXPECT_TRUE(o.constantFold);
    EXPECT_TRUE(o.rewriteSearch);
    EXPECT_TRUE(o.clockGating);

    ASSERT_TRUE(parsePassList("rewrite-search,clock-gating", &o, &err));
    EXPECT_TRUE(o.constantFold);
    EXPECT_TRUE(o.rewriteSearch);
    EXPECT_TRUE(o.clockGating);

    ASSERT_TRUE(parsePassList("constant-fold", &o, &err));
    EXPECT_TRUE(o.constantFold);
    EXPECT_FALSE(o.rewriteSearch);
    EXPECT_FALSE(o.clockGating);

    err.clear();
    EXPECT_FALSE(parsePassList("turbo-encabulate", &o, &err));
    EXPECT_FALSE(err.empty());
}

TEST(PassPipeline, OptionHashDistinguishesConfigurations)
{
    PassPipelineOptions base;
    EXPECT_EQ(hashPassPipelineOptions(base),
              hashPassPipelineOptions(PassPipelineOptions{}));

    PassPipelineOptions o = base;
    o.rewriteSearch = true;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));

    o = base;
    o.clockGating = true;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));

    o = base;
    o.moduleCut = true;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));

    o = base;
    o.constantFold = false;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));

    o = base;
    o.rewrite.lambdaUWPerPs = 2.5;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));

    o = base;
    o.gating.maxDuty = 0.5;
    EXPECT_NE(hashPassPipelineOptions(o), hashPassPipelineOptions(base));
}

/**
 * Two same-width carry-select adders: "h*" operands toggle every cycle,
 * "c*" operands never move. Same depth, same gate count — only the
 * measured activity distinguishes them, so any divergence in the chosen
 * AdderKind is the cost model weighing dynamic power against the
 * shared timing penalty.
 */
Netlist
twoAdderDesign()
{
    Netlist nl;
    NetBuilder b(nl);
    b.setAdderKind(AdderKind::CarrySelect);
    Bus ha = b.inputBus("ha", 16);
    Bus hb = b.inputBus("hb", 16);
    GateId hcin = nl.addInput("hcin");
    Bus ca = b.inputBus("ca", 16);
    Bus cb = b.inputBus("cb", 16);
    GateId ccin = nl.addInput("ccin");
    AddResult hot = b.adder(ha, hb, hcin);
    AddResult cold = b.adder(ca, cb, ccin);
    b.outputBus("hsum", hot.sum);
    b.outputBus("csum", cold.sum);
    nl.addOutput("hcout", hot.carryOut);
    nl.addOutput("ccout", cold.carryOut);
    nl.validate();
    return nl;
}

/** Drive h*-inputs with random known bits, c*-inputs with zero. */
void
measureHotCold(const Netlist &nl, ToggleCounter *tc)
{
    GateSim sim(nl);
    sim.reset();
    Rng rng(4242);
    for (int c = 0; c < 64; c++) {
        for (GateId id : nl.inputIds()) {
            bool hot = nl.name(id)[0] == 'h';
            sim.setInput(id, hot ? logicOf(rng.chance(1, 2))
                                 : Logic::Zero);
        }
        sim.evalComb();
        tc->observe(sim);
        sim.latchSequential();
    }
}

/** Variant of the adder instance driving port `port0`'s net. */
int
adderVariantFor(const Netlist &nl, const std::string &port0)
{
    GateId net = nl.gate(nl.port(port0)).in[0];
    for (const DatapathInstance &inst : nl.instances()) {
        if (inst.kind != InstanceKind::Adder)
            continue;
        for (GateId o : inst.outputs) {
            if (o == net)
                return inst.variant;
        }
    }
    return -1;
}

/**
 * Evaluate both netlists on the same stimulus (which may contain X)
 * and require agreement wherever both outputs are known.
 */
void
expectAgreeOnKnownOutputs(const Netlist &a, const Netlist &b,
                          uint32_t seed, int vectors, bool with_x)
{
    GateSim sa(a), sb(b);
    sa.reset();
    sb.reset();
    Rng rng(seed);
    for (int v = 0; v < vectors; v++) {
        for (GateId id : a.inputIds()) {
            Logic val = logicOf(rng.chance(1, 2));
            if (with_x && rng.chance(1, 4))
                val = Logic::X;
            sa.setInput(id, val);
            sb.setInput(b.port(a.name(id)), val);
        }
        sa.evalComb();
        sb.evalComb();
        for (GateId id : a.outputIds()) {
            Logic va = sa.value(id);
            Logic vb = sb.value(b.port(a.name(id)));
            if (with_x) {
                if (isKnown(va) && isKnown(vb))
                    ASSERT_EQ(va, vb) << a.name(id) << " vector " << v;
            } else {
                ASSERT_EQ(va, vb) << a.name(id) << " vector " << v;
            }
        }
    }
}

TEST(PassPipeline, RewriteSearchSplitsHotAndColdAdders)
{
    Netlist nl = twoAdderDesign();

    // Sweep the timing-penalty weight across decades. At some lambda
    // the cold adder's leakage-only ripple gain is outweighed by the
    // shared depth penalty while the hot adder's dynamic-power gain is
    // not (or vice versa): the two instances must diverge somewhere.
    bool diverged = false;
    for (double lambda :
         {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0,
          10.0, 30.0, 100.0}) {
        PassPipelineOptions opts;
        opts.rewriteSearch = true;
        opts.rewrite.lambdaUWPerPs = lambda;
        opts.rewrite.minGainFraction = 0.0;
        PassEnv env;
        // A budget far below any candidate's depth: every candidate
        // pays the same nominal voltage, and the depth term reduces to
        // lambda x critical path, identical for the two same-width
        // instances — activity is the only asymmetry.
        env.clockPeriodPs = 1.0;
        env.measureActivity = measureHotCold;

        PipelineReport report;
        Netlist out =
            runTailorPipeline(nl, nullptr, opts, env, nullptr, &report);
        int hot = adderVariantFor(out, "hsum[0]");
        int cold = adderVariantFor(out, "csum[0]");
        ASSERT_GE(hot, 0) << "hot adder instance lost";
        ASSERT_GE(cold, 0) << "cold adder instance lost";

        if (hot != cold) {
            diverged = true;
            EXPECT_GE(report.rewrittenInstances, 1u);
            // Whatever shapes won, the design must still add: exact
            // agreement on known stimulus, agreement wherever both are
            // known once X enters.
            expectAgreeOnKnownOutputs(nl, out, 99, 32, /*with_x=*/false);
            expectAgreeOnKnownOutputs(nl, out, 101, 16, /*with_x=*/true);
            break;
        }
    }
    EXPECT_TRUE(diverged)
        << "no lambda made hot and cold adders pick different kinds";
}

TEST(PassPipeline, RewriteSearchOutputStaysEquivalent)
{
    // Even at the extremes of the lambda sweep (all-ripple and
    // all-carry-select outcomes) the rewritten designs must behave
    // identically to the original.
    Netlist nl = twoAdderDesign();
    for (double lambda : {1e-4, 100.0}) {
        PassPipelineOptions opts;
        opts.rewriteSearch = true;
        opts.rewrite.lambdaUWPerPs = lambda;
        opts.rewrite.minGainFraction = 0.0;
        PassEnv env;
        env.clockPeriodPs = 1.0;
        env.measureActivity = measureHotCold;
        Netlist out = runTailorPipeline(nl, nullptr, opts, env);
        expectAgreeOnKnownOutputs(nl, out, 7, 24, /*with_x=*/false);
        expectAgreeOnKnownOutputs(nl, out, 9, 12, /*with_x=*/true);
    }
}

TEST(PassPipeline, LambdaSweepRecombinationMatchesFullPipeline)
{
    // One cached scoring pass, recombined per λ, must predict exactly
    // what the rewrite-search pipeline commits at that λ — the
    // contract bench/resynth_cost's λ-sweep relies on to avoid
    // re-running the variant rebuild per λ point.
    Netlist nl = twoAdderDesign();
    PassEnv env;
    env.clockPeriodPs = 1.0;
    env.measureActivity = measureHotCold;

    RewriteSearchOptions sopts;
    sopts.minGainFraction = 0.0;

    PassContext ctx(env);
    ctx.bind(nl);
    const std::vector<RewriteVariantScore> scores =
        scoreRewriteCandidates(nl, ctx, sopts);
    ASSERT_FALSE(scores.empty());

    // Predicted final variant of the adder driving `port0`: the cached
    // decision's variant if one exists for that instance, the existing
    // shape otherwise.
    auto predicted =
        [&](const std::vector<std::pair<size_t, uint8_t>> &decisions,
            const std::string &port0) {
            GateId net = nl.gate(nl.port(port0)).in[0];
            for (size_t k = 0; k < nl.instances().size(); k++) {
                const DatapathInstance &inst = nl.instances()[k];
                bool drives = false;
                for (GateId o : inst.outputs)
                    drives = drives || o == net;
                if (!drives)
                    continue;
                for (auto [dk, dv] : decisions) {
                    if (dk == k)
                        return int(dv);
                }
                return int(inst.variant);
            }
            return -1;
        };

    for (double lambda : {1e-4, 1e-2, 1.0, 100.0}) {
        RewriteSearchOptions lopts = sopts;
        lopts.lambdaUWPerPs = lambda;
        std::vector<std::pair<size_t, uint8_t>> decisions =
            rewriteDecisionsAtLambda(scores, lopts, ctx.clockPeriodPs());

        PassPipelineOptions popts;
        popts.rewriteSearch = true;
        popts.rewrite = lopts;
        PipelineReport report;
        Netlist out =
            runTailorPipeline(nl, nullptr, popts, env, nullptr, &report);
        EXPECT_EQ(report.rewrittenInstances, decisions.size())
            << "lambda " << lambda;
        EXPECT_EQ(adderVariantFor(out, "hsum[0]"),
                  predicted(decisions, "hsum[0]"))
            << "lambda " << lambda;
        EXPECT_EQ(adderVariantFor(out, "csum[0]"),
                  predicted(decisions, "csum[0]"))
            << "lambda " << lambda;
    }
}

TEST(ClockGating, EnumerateGroupsByEnableInAscendingOrder)
{
    Netlist nl;
    NetBuilder b(nl);
    GateId en1 = nl.addInput("en1");
    GateId en2 = nl.addInput("en2");
    Bus d1 = b.inputBus("d1", 4);
    Bus d2 = b.inputBus("d2", 6);
    Bus q1 = b.regBus(d1, en1, 0);
    Bus q2 = b.regBus(d2, en2, 0);
    GateId plain = b.dff(d1[0]);
    b.outputBus("q1", q1);
    b.outputBus("q2", q2);
    nl.addOutput("qp", plain);
    nl.validate();

    std::vector<EnableBank> banks = enumerateEnableBanks(nl);
    ASSERT_EQ(banks.size(), 2u);
    EXPECT_EQ(banks[0].enable, en1);
    EXPECT_EQ(banks[0].flops.size(), 4u);
    EXPECT_EQ(banks[1].enable, en2);
    EXPECT_EQ(banks[1].flops.size(), 6u);
    // Plain DFFs have no enable net and join no bank.
    for (const EnableBank &bank : banks) {
        for (GateId f : bank.flops) {
            EXPECT_NE(f, plain);
        }
    }
}

TEST(ClockGating, PlanAcceptsOnlyProfitableRareBanks)
{
    double p = perFlopClockUW();
    ASSERT_GT(p, 0.0);

    std::vector<EnableBank> banks(3);
    banks[0].enable = 10;
    banks[0].flops.assign(8, 100);  // duty 0.1: profitable
    banks[1].enable = 11;
    banks[1].flops.assign(2, 200);  // too narrow (minBankBits = 4)
    banks[2].enable = 12;
    banks[2].flops.assign(8, 300);  // duty 0.9: written too often

    std::vector<uint64_t> high = {10, 0, 90};
    ClockGatingReport rep = planClockGating(banks, high, 100);

    EXPECT_EQ(rep.candidateBanks, 3u);
    EXPECT_EQ(rep.cyclesObserved, 100u);
    ASSERT_EQ(rep.banks.size(), 1u);
    EXPECT_EQ(rep.banks[0].enable, 10u);
    EXPECT_EQ(rep.banks[0].flops, 8u);
    EXPECT_NEAR(rep.banks[0].duty, 0.1, 1e-12);
    // saved = ((1 - duty) x B - icgFlopEquivalents) x per-flop power.
    EXPECT_NEAR(rep.banks[0].savedUW, (0.9 * 8 - 1.5) * p, 1e-9);
    EXPECT_NEAR(rep.savedClockUW, rep.banks[0].savedUW, 1e-12);
    EXPECT_EQ(rep.gatedFlops(), 8u);
}

TEST(ClockGating, PlanRejectsBanksWhereIcgCostsMoreThanItSaves)
{
    std::vector<EnableBank> banks(1);
    banks[0].enable = 5;
    banks[0].flops.assign(4, 50);
    std::vector<uint64_t> high = {25};  // duty exactly maxDuty

    // (0.75 x 4 - 1.5) > 0: accepted at the duty boundary.
    ClockGatingReport ok = planClockGating(banks, high, 100);
    EXPECT_EQ(ok.banks.size(), 1u);

    // With a heavier ICG, (0.75 x 4 - 4) < 0: net loss, rejected.
    ClockGatingOptions heavy;
    heavy.icgFlopEquivalents = 4.0;
    ClockGatingReport bad = planClockGating(banks, high, 100, heavy);
    EXPECT_EQ(bad.candidateBanks, 1u);
    EXPECT_TRUE(bad.banks.empty());
    EXPECT_EQ(bad.savedClockUW, 0.0);
}

TEST(ClockGating, PipelinePassPlansFromDutyProvider)
{
    Netlist nl;
    NetBuilder b(nl);
    Bus d = b.inputBus("d", 8);
    GateId en = nl.addInput("en");
    Bus q = b.regBus(d, en, 0);
    b.outputBus("q", q);
    nl.validate();

    PassPipelineOptions opts;
    opts.clockGating = true;
    PassEnv env;
    env.measureDuty = [](const Netlist & /*nl*/,
                         const std::vector<GateId> &ids,
                         std::vector<uint64_t> *high, uint64_t *cycles) {
        high->assign(ids.size(), 5);
        *cycles = 50;
    };

    CutStats stats;
    PipelineReport report;
    Netlist out =
        runTailorPipeline(nl, nullptr, opts, env, &stats, &report);

    // Annotation-only: the emitted netlist is untouched.
    EXPECT_EQ(out.contentHash(), nl.contentHash());
    EXPECT_EQ(report.gating.candidateBanks, 1u);
    ASSERT_EQ(report.gating.banks.size(), 1u);
    EXPECT_EQ(report.gating.banks[0].flops, 8u);
    EXPECT_NEAR(report.gating.banks[0].duty, 0.1, 1e-12);
    EXPECT_GT(report.gating.savedClockUW, 0.0);
    bool saw_pass = false;
    for (const PassStats &p : report.passes)
        saw_pass = saw_pass || p.name == "clock-gating";
    EXPECT_TRUE(saw_pass);
}

TEST(PassPipeline, InstanceTableSurvivesJsonRoundtrip)
{
    Netlist nl;
    NetBuilder b(nl);
    b.setAdderKind(AdderKind::CarryLookahead);
    Bus a = b.inputBus("a", 8);
    Bus c = b.inputBus("b", 8);
    GateId cin = nl.addInput("cin");
    AddResult r = b.adder(a, c, cin);
    b.outputBus("s", r.sum);
    Bus sel = b.inputBus("sel", 2);
    Bus m = b.muxTree(sel, {NetBuilder::slice(a, 0, 4),
                            NetBuilder::slice(a, 4, 4),
                            NetBuilder::slice(c, 0, 4),
                            NetBuilder::slice(c, 4, 4)});
    b.outputBus("m", m);
    nl.validate();
    ASSERT_GE(nl.instances().size(), 2u);

    NetlistJsonResult rt = netlistFromJson(netlistToJson(nl));
    ASSERT_TRUE(rt.ok) << rt.error;
    EXPECT_EQ(rt.netlist.contentHash(), nl.contentHash());
    ASSERT_EQ(rt.netlist.instances().size(), nl.instances().size());
    for (size_t k = 0; k < nl.instances().size(); k++) {
        const DatapathInstance &x = nl.instances()[k];
        const DatapathInstance &y = rt.netlist.instances()[k];
        EXPECT_EQ(x.kind, y.kind) << "instance " << k;
        EXPECT_EQ(x.module, y.module) << "instance " << k;
        EXPECT_EQ(x.variant, y.variant) << "instance " << k;
        EXPECT_EQ(x.shape, y.shape) << "instance " << k;
        EXPECT_EQ(x.inputs, y.inputs) << "instance " << k;
        EXPECT_EQ(x.outputs, y.outputs) << "instance " << k;
    }
}

} // namespace
} // namespace bespoke
